// Property-based tests of the middleware invariants (DESIGN.md §7), swept
// over bound configurations and random update streams with TEST_P.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "dyconit/system.h"
#include "util/rng.h"

namespace dyconits::dyconit {
namespace {

using protocol::EntityMove;

constexpr SimDuration kTick = SimDuration::millis(50);

struct CollectingSink : FlushSink {
  struct Rec {
    SubscriberId to;
    EntityMove mv;
    SimTime created;
    SimTime flushed;
    double weight;
  };
  explicit CollectingSink(const SimClock& clock) : clock(clock) {}

  void deliver(SubscriberId to, const std::vector<FlushedUpdate>& updates) override {
    for (const auto& u : updates) {
      recs.push_back(
          {to, std::get<EntityMove>(*u.msg), u.created, clock.now(), u.weight});
    }
  }

  const SimClock& clock;
  std::vector<Rec> recs;
};

/// Drives a random but seed-deterministic stream of entity-move updates
/// into one dyconit and ticks the system.
struct StreamDriver {
  StreamDriver(std::uint64_t seed, Bounds bounds)
      : rng(seed), sys(clock), sink(clock), bounds(bounds) {
    sys.subscribe(unit, 1, bounds);
  }

  void run(int ticks, int updates_per_tick) {
    for (int t = 0; t < ticks; ++t) {
      clock.advance(kTick);
      for (int i = 0; i < updates_per_tick; ++i) {
        const auto entity = static_cast<std::uint32_t>(rng.next_below(8) + 1);
        const double x = rng.next_double_in(-100, 100);
        Update u;
        u.msg = EntityMove{entity, {x, 0, 0}, 0, 0};
        u.weight = rng.next_double_in(0.05, 1.0);
        u.created = clock.now();
        u.coalesce_key = coalesce_key_entity(entity);
        sys.update(unit, std::move(u));
        ground_truth[entity] = x;
      }
      sys.tick(sink);
      check_invariants();
    }
  }

  void check_invariants() {
    const Dyconit* d = sys.find(unit);
    if (d == nullptr) return;
    const_cast<Dyconit*>(d)->for_each_subscriber(
        [&](SubscriberId, Bounds& b, const SubscriberQueue& q) {
          if (q.empty()) return;
          // Post-tick: the queue respects both bounds.
          EXPECT_LT(clock.now() - q.oldest_created(), b.staleness)
              << "staleness invariant violated after tick";
          EXPECT_LE(q.total_weight(), b.numerical)
              << "numerical invariant violated after tick";
        });
  }

  SimClock clock;
  Rng rng;
  DyconitSystem sys;
  CollectingSink sink;
  Bounds bounds;
  DyconitId unit = DyconitId::chunk_entities({0, 0});
  std::map<std::uint32_t, double> ground_truth;
};

// -------------------------------------------------- bound-holding property

class BoundsSweep
    : public ::testing::TestWithParam<std::tuple<int /*θ ms*/, double /*δ*/>> {};

TEST_P(BoundsSweep, QueuesRespectBoundsAfterEveryTick) {
  const auto [theta_ms, delta] = GetParam();
  StreamDriver d(0xBEE5 + theta_ms, {SimDuration::millis(theta_ms), delta});
  d.run(200, 6);
  EXPECT_GT(d.sink.recs.size(), 0u);
}

TEST_P(BoundsSweep, DeliveredStalenessBoundedByThetaPlusTick) {
  const auto [theta_ms, delta] = GetParam();
  StreamDriver d(0xF00D + theta_ms, {SimDuration::millis(theta_ms), delta});
  d.run(200, 6);
  for (const auto& r : d.sink.recs) {
    EXPECT_LE((r.flushed - r.created).count_millis(), theta_ms + kTick.count_millis());
  }
}

TEST_P(BoundsSweep, LastWriteWinsAfterForcedFlush) {
  const auto [theta_ms, delta] = GetParam();
  StreamDriver d(0xCAFE + theta_ms, {SimDuration::millis(theta_ms), delta});
  d.run(150, 6);
  d.sys.flush_all(d.sink);
  // Replaying every delivered update in order must reproduce ground truth.
  std::map<std::uint32_t, double> replica;
  for (const auto& r : d.sink.recs) replica[r.mv.id] = r.mv.pos.x;
  ASSERT_EQ(replica.size(), d.ground_truth.size());
  for (const auto& [id, x] : d.ground_truth) {
    EXPECT_NEAR(replica[id], x, 1e-6) << "entity " << id;
  }
}

TEST_P(BoundsSweep, WeightIsConserved) {
  const auto [theta_ms, delta] = GetParam();
  StreamDriver d(0xAB + theta_ms, {SimDuration::millis(theta_ms), delta});
  d.run(100, 4);
  d.sys.flush_all(d.sink);
  // Every enqueued unit of weight is either delivered or was dropped with a
  // counted reason; with one stable subscriber nothing is dropped.
  double delivered = 0;
  for (const auto& r : d.sink.recs) delivered += r.weight;
  EXPECT_NEAR(delivered, d.sys.stats().weight_delivered, 1e-9);
  EXPECT_EQ(d.sys.stats().dropped_unsubscribe, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Bounds, BoundsSweep,
    ::testing::Combine(::testing::Values(0, 50, 100, 250, 1000),
                       ::testing::Values(0.0, 0.5, 2.0, 10.0, 1e9)),
    [](const auto& info) {
      return "theta" + std::to_string(std::get<0>(info.param)) + "_delta10x" +
             std::to_string(static_cast<int>(std::min(std::get<1>(info.param), 1e6) * 10));
    });

// ------------------------------------------------------------ monotonicity

TEST(MonotonicityProperty, LooserBoundsNeverDeliverMore) {
  // Deliveries (and delivered messages) must be monotonically non-
  // increasing as bounds loosen, for an identical update stream.
  const std::pair<int, double> configs[] = {
      {0, 0.0}, {50, 0.5}, {100, 1.0}, {250, 2.0}, {500, 4.0}, {2000, 16.0}};
  std::size_t prev = SIZE_MAX;
  for (const auto& [theta, delta] : configs) {
    StreamDriver d(0x5EED, {SimDuration::millis(theta), delta});  // same seed!
    d.run(200, 6);
    const std::size_t delivered = d.sink.recs.size();
    EXPECT_LE(delivered, prev) << "θ=" << theta << " δ=" << delta;
    prev = delivered;
  }
}

TEST(MonotonicityProperty, ZeroBoundsDeliverEveryTick) {
  StreamDriver d(0x111, Bounds::zero());
  d.run(100, 5);
  // Same-entity updates within one tick may coalesce (a real server also
  // sends one position per entity per tick), but nothing survives a tick:
  EXPECT_EQ(d.sys.total_queued(), 0u);
  EXPECT_EQ(d.sink.recs.size(), d.sys.stats().enqueued - d.sys.stats().coalesced);
  for (const auto& r : d.sink.recs) {
    EXPECT_EQ(r.flushed, r.created);  // delivered on the tick it was made
  }
}

TEST(MonotonicityProperty, InfiniteBoundsDeliverNothingUntilForced) {
  StreamDriver d(0x222, Bounds::infinite());
  d.run(100, 5);
  EXPECT_TRUE(d.sink.recs.empty());
  d.sys.flush_all(d.sink);
  // All 8 possible entities coalesced to one update each.
  EXPECT_LE(d.sink.recs.size(), 8u);
  EXPECT_GT(d.sink.recs.size(), 0u);
}

// ----------------------------------------------------------- ordering

TEST(OrderingProperty, DeliveryPreservesEnqueueOrderPerFlush) {
  // Updates to distinct entities (no coalescing interference) must come out
  // in enqueue order within each flush.
  SimClock clock;
  DyconitSystem sys(clock);
  CollectingSink sink(clock);
  const auto unit = DyconitId::chunk_entities({0, 0});
  sys.subscribe(unit, 1, Bounds{SimDuration::millis(500), 1e9});

  Rng rng(0x333);
  std::vector<std::uint32_t> enqueue_order;
  for (int t = 0; t < 9; ++t) {
    clock.advance(kTick);
    const auto entity = static_cast<std::uint32_t>(t + 1);
    Update u;
    u.msg = EntityMove{entity, {static_cast<double>(t), 0, 0}, 0, 0};
    u.created = clock.now();
    u.coalesce_key = coalesce_key_entity(entity);
    sys.update(unit, std::move(u));
    enqueue_order.push_back(entity);
    sys.tick(sink);
  }
  sys.flush_all(sink);
  ASSERT_EQ(sink.recs.size(), enqueue_order.size());
  for (std::size_t i = 0; i < sink.recs.size(); ++i) {
    EXPECT_EQ(sink.recs[i].mv.id, enqueue_order[i]);
  }
}

// ------------------------------------------ multi-subscriber independence

class FanoutSweep : public ::testing::TestWithParam<int /*subscribers*/> {};

TEST_P(FanoutSweep, EachSubscriberGetsTheFullStream) {
  const int subs = GetParam();
  SimClock clock;
  DyconitSystem sys(clock);
  CollectingSink sink(clock);
  const auto unit = DyconitId::chunk_entities({0, 0});
  for (int s = 1; s <= subs; ++s) {
    // Mixed bounds: odd subscribers immediate, even ones loose.
    sys.subscribe(unit, static_cast<SubscriberId>(s),
                  s % 2 == 1 ? Bounds::zero() : Bounds{SimDuration::millis(300), 5.0});
  }
  Rng rng(42);
  std::map<std::uint32_t, double> truth;
  for (int t = 0; t < 100; ++t) {
    clock.advance(kTick);
    const auto entity = static_cast<std::uint32_t>(rng.next_below(4) + 1);
    const double x = rng.next_double_in(-10, 10);
    Update u;
    u.msg = EntityMove{entity, {x, 0, 0}, 0, 0};
    u.created = clock.now();
    u.coalesce_key = coalesce_key_entity(entity);
    sys.update(unit, std::move(u));
    truth[entity] = x;
    sys.tick(sink);
  }
  sys.flush_all(sink);

  // Per subscriber, the final replayed state equals ground truth.
  for (int s = 1; s <= subs; ++s) {
    std::map<std::uint32_t, double> replica;
    for (const auto& r : sink.recs) {
      if (r.to == static_cast<SubscriberId>(s)) replica[r.mv.id] = r.mv.pos.x;
    }
    ASSERT_EQ(replica.size(), truth.size()) << "subscriber " << s;
    for (const auto& [id, x] : truth) EXPECT_NEAR(replica[id], x, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Subscribers, FanoutSweep, ::testing::Values(1, 2, 5, 16),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

// ------------------------------------------------ coalescing effectiveness

TEST(CoalescingProperty, HighRateSameKeyCollapsesToQueueOfOne) {
  SimClock clock;
  DyconitSystem sys(clock);
  CollectingSink sink(clock);
  const auto unit = DyconitId::chunk_entities({0, 0});
  sys.subscribe(unit, 1, Bounds{SimDuration::millis(1000), 1e9});
  for (int t = 0; t < 19; ++t) {  // just under the staleness bound
    clock.advance(kTick);
    Update u;
    u.msg = EntityMove{1, {static_cast<double>(t), 0, 0}, 0, 0};
    u.weight = 0.1;
    u.created = clock.now();
    u.coalesce_key = coalesce_key_entity(1);
    sys.update(unit, std::move(u));
    sys.tick(sink);
  }
  EXPECT_TRUE(sink.recs.empty());
  EXPECT_EQ(sys.total_queued(), 1u);
  EXPECT_EQ(sys.stats().coalesced, 18u);
  sys.flush_all(sink);
  ASSERT_EQ(sink.recs.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.recs[0].mv.pos.x, 18.0);       // newest payload
  EXPECT_NEAR(sink.recs[0].weight, 1.9, 1e-9);         // accumulated weight
}

TEST(CoalescingProperty, SavingsGrowWithUpdateRate) {
  // For a fixed staleness bound, doubling the update rate roughly doubles
  // the absolute number of coalesced (never-sent) updates.
  std::uint64_t prev_coalesced = 0;
  for (const int rate : {2, 4, 8}) {
    StreamDriver d(0x777, {SimDuration::millis(500), 1e9});
    d.run(100, rate);
    EXPECT_GT(d.sys.stats().coalesced, prev_coalesced);
    prev_coalesced = d.sys.stats().coalesced;
  }
}

}  // namespace
}  // namespace dyconits::dyconit
