// Structure-aware protocol fuzzing (seeded, deterministic): every message
// type is encoded, then mutated — truncation, bit flips, length-field
// corruption, tag swaps — and fed to decode(). The contract under test:
// decode() returns nullopt for malformed input and NEVER crashes,
// over-reads, or loops (scripts/verify.sh runs this under ASan+UBSan with
// DYCONITS_FUZZ_ITERS=100000).
#include <gtest/gtest.h>

#include <cstdlib>

#include "protocol/codec.h"
#include "util/rng.h"

namespace dyconits::protocol {
namespace {

std::uint64_t fuzz_iters(std::uint64_t def) {
  const char* env = std::getenv("DYCONITS_FUZZ_ITERS");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : def;
}

/// One representative of every wire message, with non-trivial payloads so
/// strings, blobs, and batch length fields are all present to corrupt.
std::vector<AnyMessage> corpus() {
  std::vector<AnyMessage> msgs;
  msgs.push_back(JoinRequest{"fuzz-bot-with-a-longish-name"});
  msgs.push_back(PlayerMove{{1.5, 64.0, -3.25}, 90.0f, -10.0f});
  msgs.push_back(PlayerDig{{10, 60, -20}});
  msgs.push_back(PlayerPlace{{-5, 70, 5}, world::Block::Stone});
  msgs.push_back(KeepAliveReply{0xDEADBEEF});
  msgs.push_back(ChatSend{"hello chaos"});
  msgs.push_back(ResyncRequest{123456});
  msgs.push_back(JoinAck{42, {0.5, 65.0, 0.5}, 8});
  {
    ChunkData cd;
    cd.pos = {3, -4};
    for (int i = 0; i < 200; ++i) cd.rle.push_back(static_cast<std::uint8_t>(i));
    msgs.push_back(std::move(cd));
  }
  msgs.push_back(UnloadChunk{{-7, 9}});
  msgs.push_back(BlockChange{{100, 40, 100}, world::Block::Dirt});
  {
    MultiBlockChange mbc;
    mbc.chunk = {1, 2};
    for (int i = 0; i < 30; ++i) {
      mbc.entries.push_back({static_cast<std::uint8_t>(i % 16),
                             static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i % 16),
                             world::Block::Stone});
    }
    msgs.push_back(std::move(mbc));
  }
  msgs.push_back(EntitySpawn{7, entity::EntityKind::Player, {1, 2, 3}, 0, 0, "steve", 0});
  msgs.push_back(EntityDespawn{7});
  msgs.push_back(EntityMove{7, {4, 5, 6}, 180.0f, 45.0f});
  {
    EntityMoveBatch batch;
    for (int i = 0; i < 25; ++i) {
      batch.moves.push_back({static_cast<entity::EntityId>(i), {1.0 * i, 64, 2.0 * i}, 0, 0});
    }
    msgs.push_back(std::move(batch));
  }
  msgs.push_back(KeepAlive{77});
  msgs.push_back(ChatBroadcast{9, "a broadcast line"});
  msgs.push_back(InventoryUpdate{world::Block::Wood, 31});
  msgs.push_back(ResyncAck{5});
  return msgs;
}

/// decode() must either reject the frame or produce a message that
/// re-encodes cleanly — never crash. Returns true if it decoded.
bool decode_must_not_crash(const net::Frame& frame) {
  const auto decoded = decode(frame);
  if (!decoded.has_value()) return false;
  // Whatever survived decoding must be internally consistent enough to
  // round-trip: encode() on it must not blow up either.
  const net::Frame re = encode(*decoded);
  EXPECT_EQ(re.tag, static_cast<std::uint8_t>(type_of(*decoded)));
  return true;
}

TEST(ProtocolFuzz, CleanRoundtripBaseline) {
  for (const auto& msg : corpus()) {
    const net::Frame f = encode(msg);
    const auto decoded = decode(f);
    ASSERT_TRUE(decoded.has_value()) << message_type_name(type_of(msg));
    EXPECT_EQ(decoded->index(), msg.index());
  }
}

TEST(ProtocolFuzz, TruncationAtEveryLength) {
  // Exhaustive, not random: every prefix of every message must be rejected
  // or decode to something re-encodable (empty-payload types aside).
  for (const auto& msg : corpus()) {
    const net::Frame full = encode(msg);
    for (std::size_t len = 0; len < full.payload.size(); ++len) {
      net::Frame cut = full;
      cut.payload.resize(len);
      decode_must_not_crash(cut);
    }
  }
}

TEST(ProtocolFuzz, SeededMutationSweep) {
  const auto msgs = corpus();
  Rng rng(0xF022EEDull);
  const std::uint64_t iters = fuzz_iters(20000);
  std::uint64_t rejected = 0, survived = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    net::Frame f = encode(msgs[rng.next_below(msgs.size())]);
    switch (rng.next_below(4)) {
      case 0: {  // bit flips anywhere in the payload
        if (f.payload.empty()) break;
        const std::uint64_t flips = 1 + rng.next_below(8);
        for (std::uint64_t k = 0; k < flips; ++k) {
          f.payload[rng.next_below(f.payload.size())] ^=
              static_cast<std::uint8_t>(1u << rng.next_below(8));
        }
        break;
      }
      case 1: {  // truncate to a random length
        if (f.payload.empty()) break;
        f.payload.resize(rng.next_below(f.payload.size()));
        break;
      }
      case 2: {  // corrupt the leading bytes — varint length fields live
                 // there, so hostile length claims get exercised hard
        const std::size_t n = std::min<std::size_t>(f.payload.size(), 4);
        for (std::size_t k = 0; k < n; ++k) {
          f.payload[k] = static_cast<std::uint8_t>(rng.next_below(256));
        }
        break;
      }
      case 3:  // random (possibly unknown) tag over a valid body
        f.tag = static_cast<std::uint8_t>(rng.next_below(net::kMaxTags));
        break;
    }
    if (decode_must_not_crash(f)) {
      ++survived;
    } else {
      ++rejected;
    }
  }
  // Sanity: the mutator is actually producing garbage, and some mutations
  // are survivable (bit flips in f32 fields decode fine).
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(survived, 0u);
}

TEST(ProtocolFuzz, PureRandomPayloads) {
  Rng rng(0xBADF00Dull);
  const std::uint64_t iters = fuzz_iters(20000) / 2;
  for (std::uint64_t i = 0; i < iters; ++i) {
    net::Frame f;
    f.tag = static_cast<std::uint8_t>(rng.next_below(net::kMaxTags));
    f.payload.resize(rng.next_below(256));
    for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng.next_below(256));
    decode_must_not_crash(f);
  }
}

TEST(ProtocolFuzz, HostileLengthClaimsDoNotAllocate) {
  // A batch header claiming millions of entries backed by no bytes must be
  // rejected up front (reserve clamps), not die trying to allocate.
  for (const std::uint8_t tag : {static_cast<std::uint8_t>(MessageType::MultiBlockChange),
                                 static_cast<std::uint8_t>(MessageType::EntityMoveBatch),
                                 static_cast<std::uint8_t>(MessageType::ChunkData)}) {
    net::Frame f;
    f.tag = tag;
    // chunk pos (two svarints) then a huge count varint.
    f.payload = {0x02, 0x04, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
    EXPECT_FALSE(decode(f).has_value()) << static_cast<int>(tag);
  }
}

}  // namespace
}  // namespace dyconits::protocol
