// Unit tests for src/protocol: every message type roundtrips; malformed
// input is rejected memory-safely.
#include <gtest/gtest.h>

#include "protocol/codec.h"
#include "util/rng.h"
#include "world/chunk.h"

namespace dyconits::protocol {
namespace {

using world::Block;
using world::BlockPos;
using world::ChunkPos;
using world::Vec3;

template <typename T>
T roundtrip(const T& msg) {
  const net::Frame f = encode(AnyMessage{msg});
  const auto decoded = decode(f);
  EXPECT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::holds_alternative<T>(*decoded));
  return std::get<T>(*decoded);
}

TEST(CodecTest, JoinRequest) {
  const auto m = roundtrip(JoinRequest{"steve-42"});
  EXPECT_EQ(m.name, "steve-42");
}

TEST(CodecTest, PlayerMoveQuantizesAngles) {
  const auto m = roundtrip(PlayerMove{{1.5, 33.0, -7.25}, 91.0f, -10.0f});
  EXPECT_EQ(m.pos, (Vec3{1.5, 33.0, -7.25}));
  EXPECT_NEAR(m.yaw, 91.0f, 360.0f / 256.0f);
  // Negative pitch wraps through the byte encoding; compare modulo 360.
  EXPECT_NEAR(std::fmod(m.pitch + 360.0f, 360.0f), 350.0f, 360.0f / 256.0f);
}

TEST(CodecTest, PlayerDigNegativeCoords) {
  const auto m = roundtrip(PlayerDig{{-1000000, 63, 1000000}});
  EXPECT_EQ(m.pos, (BlockPos{-1000000, 63, 1000000}));
}

TEST(CodecTest, PlayerPlace) {
  const auto m = roundtrip(PlayerPlace{{5, 10, 5}, Block::Planks});
  EXPECT_EQ(m.block, Block::Planks);
}

TEST(CodecTest, KeepAlivePair) {
  EXPECT_EQ(roundtrip(KeepAlive{0xCAFEBABE}).nonce, 0xCAFEBABEu);
  EXPECT_EQ(roundtrip(KeepAliveReply{77}).nonce, 77u);
}

TEST(CodecTest, TickBarrierPair) {
  EXPECT_EQ(roundtrip(TickBarrier{0xFFFFFFFF}).tick, 0xFFFFFFFFu);
  EXPECT_EQ(roundtrip(TickBarrierAck{12345}).tick, 12345u);
}

TEST(CodecTest, Chat) {
  EXPECT_EQ(roundtrip(ChatSend{"hi"}).text, "hi");
  const auto m = roundtrip(ChatBroadcast{42, "yo"});
  EXPECT_EQ(m.from, 42u);
  EXPECT_EQ(m.text, "yo");
}

TEST(CodecTest, JoinAck) {
  const auto m = roundtrip(JoinAck{9, {1, 2, 3}, 8});
  EXPECT_EQ(m.self_id, 9u);
  EXPECT_EQ(m.spawn, (Vec3{1, 2, 3}));
  EXPECT_EQ(m.view_distance, 8);
}

TEST(CodecTest, ChunkDataCarriesRealChunk) {
  world::Chunk chunk({-2, 7});
  chunk.set_local(3, 20, 9, Block::Wood);
  const auto m = roundtrip(ChunkData{{-2, 7}, chunk.encode_rle()});
  EXPECT_EQ(m.pos, (ChunkPos{-2, 7}));
  world::Chunk decoded({-2, 7});
  ASSERT_TRUE(decoded.decode_rle(m.rle.data(), m.rle.size()));
  EXPECT_EQ(decoded.get_local(3, 20, 9), Block::Wood);
}

TEST(CodecTest, UnloadChunk) {
  EXPECT_EQ(roundtrip(UnloadChunk{{-9, 9}}).pos, (ChunkPos{-9, 9}));
}

TEST(CodecTest, BlockChange) {
  const auto m = roundtrip(BlockChange{{100, 1, -100}, Block::Water});
  EXPECT_EQ(m.pos, (BlockPos{100, 1, -100}));
  EXPECT_EQ(m.block, Block::Water);
}

TEST(CodecTest, MultiBlockChangePacksLocalCoords) {
  MultiBlockChange in;
  in.chunk = {4, -4};
  in.entries = {{15, 63, 15, Block::Stone}, {0, 0, 0, Block::Dirt}, {7, 31, 9, Block::Sand}};
  const auto m = roundtrip(in);
  ASSERT_EQ(m.entries.size(), 3u);
  EXPECT_EQ(m.entries[0].x, 15);
  EXPECT_EQ(m.entries[0].y, 63);
  EXPECT_EQ(m.entries[0].z, 15);
  EXPECT_EQ(m.entries[1].block, Block::Dirt);
  EXPECT_EQ(m.entries[2].x, 7);
  EXPECT_EQ(m.entries[2].z, 9);
}

TEST(CodecTest, EntitySpawnWithName) {
  const auto m = roundtrip(
      EntitySpawn{12, entity::EntityKind::Mob, {0.5, 20, 0.5}, 180.0f, 0.0f, "zombie"});
  EXPECT_EQ(m.id, 12u);
  EXPECT_EQ(m.kind, entity::EntityKind::Mob);
  EXPECT_EQ(m.name, "zombie");
  EXPECT_NEAR(m.yaw, 180.0f, 1.5f);
  EXPECT_EQ(m.data, 0);
}

TEST(CodecTest, ItemEntitySpawnCarriesBlockId) {
  const auto m = roundtrip(EntitySpawn{44, entity::EntityKind::Item, {1, 2, 3}, 0, 0, "",
                                       static_cast<std::uint16_t>(Block::Cobblestone)});
  EXPECT_EQ(m.kind, entity::EntityKind::Item);
  EXPECT_EQ(static_cast<Block>(m.data), Block::Cobblestone);
}

TEST(CodecTest, InventoryUpdate) {
  const auto m = roundtrip(InventoryUpdate{Block::Planks, 37});
  EXPECT_EQ(m.item, Block::Planks);
  EXPECT_EQ(m.count, 37u);
}

TEST(CodecTest, EntityDespawn) {
  EXPECT_EQ(roundtrip(EntityDespawn{99}).id, 99u);
}

TEST(CodecTest, EntityMove) {
  const auto m = roundtrip(EntityMove{7, {-3.5, 21, 8.25}, 45.0f, 0.0f});
  EXPECT_EQ(m.id, 7u);
  EXPECT_EQ(m.pos, (Vec3{-3.5, 21, 8.25}));
}

TEST(CodecTest, EntityMoveBatch) {
  EntityMoveBatch in;
  for (std::uint32_t i = 1; i <= 50; ++i) {
    in.moves.push_back({i, {static_cast<double>(i), 20, 0}, 0, 0});
  }
  const auto m = roundtrip(in);
  ASSERT_EQ(m.moves.size(), 50u);
  EXPECT_EQ(m.moves[49].id, 50u);
  EXPECT_EQ(m.moves[49].pos.x, 50.0);
}

TEST(CodecTest, BatchIsSmallerThanSingles) {
  EntityMoveBatch batch;
  std::size_t singles = 0;
  for (std::uint32_t i = 1; i <= 20; ++i) {
    const EntityMove mv{i, {1, 2, 3}, 0, 0};
    batch.moves.push_back(mv);
    singles += encode(AnyMessage{mv}).wire_size();
  }
  EXPECT_LT(encode(AnyMessage{batch}).wire_size(), singles);
}

// Documents the wire budget of the high-rate messages; a regression here
// silently inflates every bandwidth result.
TEST(CodecTest, WireSizeBudgetForHotMessages) {
  const auto size = [](const AnyMessage& m) { return encode(m).wire_size(); };
  // EntityMove: tag + len + varint id + 3x f32 + 2 angle bytes.
  EXPECT_LE(size(EntityMove{100000, {100000.5, 63, -100000.5}, 359.0f, -89.0f}), 21u);
  EXPECT_GE(size(EntityMove{1, {0, 0, 0}, 0, 0}), 17u);  // nothing shrinks below this
  // BlockChange at +/-100k coordinates.
  EXPECT_LE(size(BlockChange{{100000, 63, -100000}, Block::Stone}), 11u);
  // MultiBlockChange amortizes to ~3-4 bytes per entry.
  MultiBlockChange mbc;
  mbc.chunk = {100, -100};
  for (int i = 0; i < 64; ++i) {
    mbc.entries.push_back({static_cast<std::uint8_t>(i % 16),
                           static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(i / 16),
                           Block::Planks});
  }
  EXPECT_LE(size(mbc), 64u * 4u + 10u);
  // KeepAlive stays trivial.
  EXPECT_LE(size(KeepAlive{0xFFFFFFFF}), 7u);
}

TEST(CodecTest, TypeOfMatchesTag) {
  const AnyMessage msgs[] = {JoinRequest{}, PlayerMove{},   PlayerDig{},
                             PlayerPlace{}, KeepAliveReply{}, ChatSend{},
                             JoinAck{},     ChunkData{},    UnloadChunk{},
                             BlockChange{}, MultiBlockChange{}, EntitySpawn{},
                             EntityDespawn{}, EntityMove{}, EntityMoveBatch{},
                             KeepAlive{},   ChatBroadcast{}, InventoryUpdate{},
                             TickBarrier{}, TickBarrierAck{}};
  for (const auto& m : msgs) {
    EXPECT_EQ(encode(m).tag, static_cast<std::uint8_t>(type_of(m)));
    EXPECT_STRNE(message_type_name(type_of(m)), "Unknown");
  }
}

TEST(CodecTest, UnknownTagRejected) {
  net::Frame f;
  f.tag = 0;
  EXPECT_FALSE(decode(f).has_value());
  f.tag = 99;
  EXPECT_FALSE(decode(f).has_value());
}

TEST(CodecTest, TrailingBytesRejected) {
  net::Frame f = encode(AnyMessage{KeepAlive{1}});
  f.payload.push_back(0x00);
  EXPECT_FALSE(decode(f).has_value());
}

TEST(CodecTest, TruncatedPayloadRejected) {
  net::Frame f = encode(AnyMessage{EntityMove{7, {1, 2, 3}, 0, 0}});
  f.payload.pop_back();
  EXPECT_FALSE(decode(f).has_value());
}

TEST(CodecTest, HugeBatchCountRejected) {
  net::Frame f;
  f.tag = static_cast<std::uint8_t>(MessageType::EntityMoveBatch);
  net::ByteWriter w;
  w.varint(50'000'000);  // absurd count, no data
  f.payload = w.take();
  EXPECT_FALSE(decode(f).has_value());
}

TEST(CodecTest, InvalidBlockIdRejected) {
  net::Frame f;
  f.tag = static_cast<std::uint8_t>(MessageType::BlockChange);
  net::ByteWriter w;
  w.svarint(0);
  w.u8(0);
  w.svarint(0);
  w.varint(200);  // out of palette
  f.payload = w.take();
  EXPECT_FALSE(decode(f).has_value());
}

TEST(CodecTest, InvalidEntityKindRejected) {
  net::Frame f = encode(AnyMessage{EntitySpawn{1, entity::EntityKind::Player, {}, 0, 0, ""}});
  f.payload[net::varint_size(1)] = 7;  // kind byte follows the id varint
  EXPECT_FALSE(decode(f).has_value());
}

// Fuzz: random payloads under every tag must never crash and mostly fail
// to decode; when they do decode, re-encoding must not crash either.
TEST(CodecTest, FuzzRandomPayloadsAreSafe) {
  Rng rng(0xF022);
  for (int iter = 0; iter < 5000; ++iter) {
    net::Frame f;
    f.tag = static_cast<std::uint8_t>(rng.next_below(24));
    f.payload.resize(rng.next_below(64));
    for (auto& b : f.payload) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto decoded = decode(f);
    if (decoded.has_value()) {
      const net::Frame re = encode(*decoded);
      EXPECT_EQ(re.tag, f.tag);
    }
  }
}

// Property: decode(encode(x)) == x up to angle quantization, for random
// well-formed messages.
TEST(CodecTest, RandomizedMoveRoundtrips) {
  Rng rng(0xABCD);
  for (int i = 0; i < 2000; ++i) {
    const EntityMove in{static_cast<entity::EntityId>(rng.next_below(100000) + 1),
                        {rng.next_double_in(-1e6, 1e6), rng.next_double_in(0, 64),
                         rng.next_double_in(-1e6, 1e6)},
                        static_cast<float>(rng.next_double_in(0, 360)), 0};
    const auto out = roundtrip(in);
    EXPECT_EQ(out.id, in.id);
    EXPECT_NEAR(out.pos.x, in.pos.x, std::abs(in.pos.x) * 1e-6 + 1e-3);  // f32
    EXPECT_NEAR(out.pos.y, in.pos.y, 1e-3);
  }
}

}  // namespace
}  // namespace dyconits::protocol
