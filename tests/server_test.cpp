// Integration-level unit tests for the game server: join flow, interest
// management, update propagation on both dispatch paths, keep-alives, and
// session teardown.
#include <gtest/gtest.h>

#include <memory>

#include "dyconit/policies/basic.h"
#include "dyconit/policies/factory.h"
#include "server/game_server.h"

namespace dyconits::server {
namespace {

using protocol::AnyMessage;
using world::ChunkPos;
using world::Vec3;

/// A scripted protocol client with no behavior of its own.
class TestClient {
 public:
  TestClient(SimClock& clock, net::SimNetwork& net, net::EndpointId server,
             std::string name)
      : clock_(clock), net_(net), server_(server), name_(std::move(name)) {
    ep_ = net_.create_endpoint(name_);
    net_.connect(ep_, server_, {SimDuration::millis(0), 0.0});
  }

  void join() { send(protocol::JoinRequest{name_}); }

  void send(const AnyMessage& m) { net_.send(ep_, server_, protocol::encode(m)); }

  /// Drains deliveries into the inbox.
  void poll() {
    for (const auto& d : net_.poll(ep_)) {
      auto msg = protocol::decode(d.frame);
      ASSERT_TRUE(msg.has_value());
      inbox_.push_back(std::move(*msg));
    }
  }

  template <typename T>
  std::size_t count() const {
    std::size_t n = 0;
    for (const auto& m : inbox_) n += std::holds_alternative<T>(m) ? 1 : 0;
    return n;
  }

  template <typename T>
  const T* last() const {
    const T* found = nullptr;
    for (const auto& m : inbox_) {
      if (const T* p = std::get_if<T>(&m)) found = p;
    }
    return found;
  }

  /// Total entity-move updates, counting batch contents.
  std::size_t total_moves() const {
    std::size_t n = 0;
    for (const auto& m : inbox_) {
      if (std::holds_alternative<protocol::EntityMove>(m)) ++n;
      if (const auto* b = std::get_if<protocol::EntityMoveBatch>(&m)) n += b->moves.size();
    }
    return n;
  }

  void clear() { inbox_.clear(); }
  const std::vector<AnyMessage>& inbox() const { return inbox_; }
  net::EndpointId ep() const { return ep_; }

 private:
  SimClock& clock_;
  net::SimNetwork& net_;
  net::EndpointId server_;
  std::string name_;
  net::EndpointId ep_ = 0;
  std::vector<AnyMessage> inbox_;
};

class ServerTest : public ::testing::Test {
 protected:
  /// policy spec "" = vanilla.
  void build(const std::string& policy_spec) {
    ServerConfig cfg;
    cfg.view_distance = 2;
    cfg.unload_margin = 1;
    cfg.max_chunk_sends_per_tick = 100;
    cfg.use_dyconits = !policy_spec.empty();
    cfg.net_cost_per_frame = SimDuration::micros(0);  // raw CPU in tests
    cfg.net_cost_per_byte_ns = 0.0;
    cfg.spawn_provider = [this](const std::string& name) {
      const auto it = spawns_.find(name);
      return it != spawns_.end() ? it->second : Vec3{8.5, 1, 8.5};
    };
    std::unique_ptr<dyconit::Policy> policy;
    if (!policy_spec.empty()) {
      policy = dyconit::make_policy(policy_spec);
      ASSERT_NE(policy, nullptr);
    }
    server_ = std::make_unique<GameServer>(clock_, net_, world_, std::move(policy),
                                           std::move(cfg));
  }

  TestClient make_client(const std::string& name, Vec3 spawn = {8.5, 1, 8.5}) {
    spawns_[name] = spawn;
    return TestClient(clock_, net_, server_->endpoint(), name);
  }

  /// One full round: advance time, server tick, clients poll.
  void step(std::initializer_list<TestClient*> clients, int ticks = 1) {
    for (int i = 0; i < ticks; ++i) {
      clock_.advance(SimDuration::millis(50));
      server_->tick();
      for (TestClient* c : clients) c->poll();
    }
  }

  SimClock clock_;
  net::SimNetwork net_{clock_};
  world::World world_;  // flat: deterministic, ground at y=0
  std::unique_ptr<GameServer> server_;
  std::unordered_map<std::string, Vec3> spawns_;
};

// -------------------------------------------------------------------- join

TEST_F(ServerTest, JoinProducesAckAndChunks) {
  build("");
  TestClient c = make_client("alice");
  c.join();
  step({&c});

  EXPECT_EQ(server_->player_count(), 1u);
  const auto* ack = c.last<protocol::JoinAck>();
  ASSERT_NE(ack, nullptr);
  EXPECT_NE(ack->self_id, 0u);
  EXPECT_EQ(ack->view_distance, 2);
  EXPECT_DOUBLE_EQ(ack->spawn.y, 1.0);
  // View square (2*2+1)^2 = 25 chunks.
  EXPECT_EQ(c.count<protocol::ChunkData>(), 25u);
}

TEST_F(ServerTest, ChunkStreamingIsThrottled) {
  build("");
  server_ = nullptr;
  ServerConfig cfg;
  cfg.view_distance = 2;
  cfg.max_chunk_sends_per_tick = 10;
  cfg.use_dyconits = false;
  cfg.net_cost_per_frame = SimDuration::micros(0);
  cfg.net_cost_per_byte_ns = 0.0;
  server_ = std::make_unique<GameServer>(clock_, net_, world_, nullptr, std::move(cfg));

  TestClient c = make_client("alice");
  c.join();
  step({&c});
  EXPECT_EQ(c.count<protocol::ChunkData>(), 10u);
  step({&c});
  EXPECT_EQ(c.count<protocol::ChunkData>(), 20u);
  step({&c});
  EXPECT_EQ(c.count<protocol::ChunkData>(), 25u);
}

TEST_F(ServerTest, TwoNearbyPlayersSeeEachOther) {
  build("");
  TestClient a = make_client("alice");
  TestClient b = make_client("bob", {10.5, 1, 10.5});
  a.join();
  step({&a, &b});
  b.join();
  step({&a, &b});

  const auto* spawn_seen_by_a = a.last<protocol::EntitySpawn>();
  ASSERT_NE(spawn_seen_by_a, nullptr);
  EXPECT_EQ(spawn_seen_by_a->name, "bob");
  const auto* spawn_seen_by_b = b.last<protocol::EntitySpawn>();
  ASSERT_NE(spawn_seen_by_b, nullptr);
  EXPECT_EQ(spawn_seen_by_b->name, "alice");
}

TEST_F(ServerTest, DistantPlayersInvisible) {
  build("");
  TestClient a = make_client("alice");
  TestClient b = make_client("bob", {500.5, 1, 500.5});
  a.join();
  b.join();
  step({&a, &b}, 3);
  EXPECT_EQ(a.count<protocol::EntitySpawn>(), 0u);
  EXPECT_EQ(b.count<protocol::EntitySpawn>(), 0u);
}

TEST_F(ServerTest, StrangerMessagesIgnored) {
  build("");
  TestClient c = make_client("alice");
  c.send(protocol::PlayerMove{{1, 1, 1}, 0, 0});  // never joined
  step({&c});
  EXPECT_EQ(server_->player_count(), 0u);
  EXPECT_TRUE(c.inbox().empty());
}

// --------------------------------------------------------------- movement

class ServerDispatchTest : public ServerTest,
                           public ::testing::WithParamInterface<const char*> {};

TEST_P(ServerDispatchTest, MovePropagatesToNearbyViewer) {
  build(GetParam());
  TestClient a = make_client("alice");
  TestClient b = make_client("bob", {12.5, 1, 8.5});
  a.join();
  b.join();
  step({&a, &b}, 2);
  b.clear();

  a.send(protocol::PlayerMove{{9.5, 1, 8.5}, 90.0f, 0});
  step({&a, &b}, 2);

  EXPECT_GE(b.total_moves(), 1u);
  const entity::EntityId alice_id = server_->entity_of(a.ep());
  const entity::Entity* e = server_->entities().find(alice_id);
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->pos.x, 9.5);
}

TEST_P(ServerDispatchTest, OriginatorDoesNotEchoOwnMove) {
  build(GetParam());
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 2);
  a.clear();
  a.send(protocol::PlayerMove{{9.5, 1, 8.5}, 0, 0});
  step({&a}, 3);
  EXPECT_EQ(a.total_moves(), 0u);
}

TEST_P(ServerDispatchTest, BlockChangePropagates) {
  build(GetParam());
  TestClient a = make_client("alice");
  TestClient b = make_client("bob", {12.5, 1, 8.5});
  a.join();
  b.join();
  step({&a, &b}, 2);
  a.clear();
  b.clear();

  a.send(protocol::PlayerPlace{{9, 1, 9}, world::Block::Planks});
  step({&a, &b}, 2);

  EXPECT_EQ(world_.block_at({9, 1, 9}), world::Block::Planks);
  const auto* bc = b.last<protocol::BlockChange>();
  ASSERT_NE(bc, nullptr);
  EXPECT_EQ(bc->pos, (world::BlockPos{9, 1, 9}));
  EXPECT_EQ(bc->block, world::Block::Planks);
  // The originator is not re-notified of its own edit.
  EXPECT_EQ(a.count<protocol::BlockChange>(), 0u);
  EXPECT_EQ(a.count<protocol::MultiBlockChange>(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Paths, ServerDispatchTest, ::testing::Values("", "zero"),
                         [](const auto& info) {
                           return std::string(info.param).empty() ? "vanilla"
                                                                  : "dyconit_zero";
                         });

TEST_F(ServerTest, InfinitePolicyHoldsUpdates) {
  build("infinite");
  TestClient a = make_client("alice");
  TestClient b = make_client("bob", {12.5, 1, 8.5});
  a.join();
  b.join();
  step({&a, &b}, 2);
  b.clear();
  a.send(protocol::PlayerMove{{9.5, 1, 8.5}, 0, 0});
  step({&a, &b}, 10);
  EXPECT_EQ(b.total_moves(), 0u);  // queued forever, never flushed
  EXPECT_GT(server_->dyconits().total_queued(), 0u);
}

TEST_F(ServerTest, EnvironmentTicksRegrowGrassAndPropagate) {
  // Flat world with exposed dirt; environmental ticks regrow grass and the
  // change reaches viewers through the normal dispatch path.
  for (int x = 0; x < 16; ++x) {
    for (int z = 0; z < 16; ++z) world_.set_block({x, 1, z}, world::Block::Dirt);
  }
  ServerConfig cfg;
  cfg.view_distance = 2;
  cfg.max_chunk_sends_per_tick = 100;
  cfg.use_dyconits = false;
  cfg.env_ticks_per_tick = 32;
  cfg.net_cost_per_frame = SimDuration::micros(0);
  cfg.net_cost_per_byte_ns = 0.0;
  cfg.spawn_provider = [this](const std::string& name) { return spawns_[name]; };
  server_ = std::make_unique<GameServer>(clock_, net_, world_, nullptr, std::move(cfg));

  TestClient a = make_client("alice", {8.5, 2, 8.5});
  a.join();
  step({&a}, 2);
  a.clear();
  step({&a}, 200);

  EXPECT_GT(server_->env_changes(), 10u);
  ASSERT_GT(a.count<protocol::BlockChange>(), 0u);
  EXPECT_EQ(a.last<protocol::BlockChange>()->block, world::Block::Grass);
}

TEST_F(ServerTest, EnvironmentTicksDisabledByDefault) {
  build("");
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 100);
  EXPECT_EQ(server_->env_changes(), 0u);
}

TEST_F(ServerTest, SnapshotCatchUpResendsChunkState) {
  // Infinite bounds + a tiny snapshot threshold: deltas are never flushed,
  // so a viewer that falls far behind is caught up with a ChunkData resend.
  ServerConfig cfg;
  cfg.view_distance = 2;
  cfg.max_chunk_sends_per_tick = 100;
  cfg.use_dyconits = true;
  cfg.snapshot_queue_threshold = 4;
  cfg.net_cost_per_frame = SimDuration::micros(0);
  cfg.net_cost_per_byte_ns = 0.0;
  cfg.spawn_provider = [this](const std::string& name) { return spawns_[name]; };
  server_ = std::make_unique<GameServer>(clock_, net_, world_,
                                         dyconit::make_policy("infinite"), std::move(cfg));

  TestClient a = make_client("alice");
  TestClient b = make_client("bob", {12.5, 1, 8.5});
  a.join();
  b.join();
  step({&a, &b}, 2);
  b.clear();

  // Alice edits 8 distinct blocks in one chunk: exceeds bob's threshold.
  for (int i = 0; i < 8; ++i) {
    a.send(protocol::PlayerPlace{{1 + i, 1, 1}, world::Block::Planks});
  }
  step({&a, &b}, 4);

  EXPECT_GT(server_->dyconit_stats().snapshots_requested, 0u);
  EXPECT_EQ(b.count<protocol::BlockChange>(), 0u);       // deltas never flushed
  EXPECT_EQ(b.count<protocol::MultiBlockChange>(), 0u);
  ASSERT_GE(b.count<protocol::ChunkData>(), 1u);         // fresh snapshot instead
  const auto* cd = b.last<protocol::ChunkData>();
  world::Chunk decoded(cd->pos);
  ASSERT_TRUE(decoded.decode_rle(cd->rle.data(), cd->rle.size()));
  EXPECT_EQ(decoded.get_local(3, 1, 1), world::Block::Planks);
}

TEST_F(ServerTest, AntiTeleportRejected) {
  build("");
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 2);
  a.send(protocol::PlayerMove{{100.5, 1, 8.5}, 0, 0});  // 92 blocks in one message
  step({&a}, 2);
  const entity::Entity* e = server_->entities().find(server_->entity_of(a.ep()));
  ASSERT_NE(e, nullptr);
  EXPECT_DOUBLE_EQ(e->pos.x, 8.5);  // unchanged
}

TEST_F(ServerTest, DigBedrockRejected) {
  build("");
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 2);
  a.send(protocol::PlayerDig{{8, 0, 8}});  // bedrock floor
  step({&a}, 2);
  EXPECT_EQ(world_.block_at({8, 0, 8}), world::Block::Bedrock);
}

TEST_F(ServerTest, PlaceIntoOccupiedRejected) {
  build("");
  world_.set_block({9, 1, 9}, world::Block::Stone);
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 2);
  a.send(protocol::PlayerPlace{{9, 1, 9}, world::Block::Planks});
  step({&a}, 2);
  EXPECT_EQ(world_.block_at({9, 1, 9}), world::Block::Stone);
}

// --------------------------------------------------------------- survival

class SurvivalTest : public ServerTest {
 protected:
  void build_survival(SimDuration item_ttl = SimDuration::seconds(60)) {
    ServerConfig cfg;
    cfg.view_distance = 2;
    cfg.max_chunk_sends_per_tick = 100;
    cfg.use_dyconits = false;
    cfg.survival_mode = true;
    cfg.item_ttl = item_ttl;
    cfg.net_cost_per_frame = SimDuration::micros(0);
    cfg.net_cost_per_byte_ns = 0.0;
    cfg.spawn_provider = [this](const std::string& name) { return spawns_[name]; };
    server_ = std::make_unique<GameServer>(clock_, net_, world_, nullptr, std::move(cfg));
  }
};

TEST_F(SurvivalTest, DigDropsAnItemEntity) {
  build_survival();
  world_.set_block({10, 1, 8}, world::Block::Stone);
  TestClient a = make_client("alice");
  TestClient b = make_client("bob", {12.5, 1, 10.5});
  a.join();
  b.join();
  step({&a, &b}, 2);
  b.clear();

  a.send(protocol::PlayerDig{{10, 1, 8}});
  step({&a, &b}, 2);

  EXPECT_EQ(world_.block_at({10, 1, 8}), world::Block::Air);
  EXPECT_EQ(server_->items_dropped(), 1u);
  const auto* spawn = b.last<protocol::EntitySpawn>();
  ASSERT_NE(spawn, nullptr);
  EXPECT_EQ(spawn->kind, entity::EntityKind::Item);
  EXPECT_EQ(static_cast<world::Block>(spawn->data), world::Block::Stone);
}

TEST_F(SurvivalTest, WalkingOverItemPicksItUp) {
  build_survival();
  world_.set_block({10, 1, 8}, world::Block::Stone);
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 2);
  a.send(protocol::PlayerDig{{10, 1, 8}});
  step({&a}, 2);
  // Walk onto the drop.
  a.send(protocol::PlayerMove{{10.5, 1, 8.5}, 0, 0});
  step({&a}, 3);

  EXPECT_EQ(server_->items_picked_up(), 1u);
  EXPECT_EQ(server_->inventory_of(a.ep(), world::Block::Stone), 1u);
  const auto* inv = a.last<protocol::InventoryUpdate>();
  ASSERT_NE(inv, nullptr);
  EXPECT_EQ(inv->item, world::Block::Stone);
  EXPECT_EQ(inv->count, 1u);
  // The item entity is gone for everyone.
  EXPECT_GE(a.count<protocol::EntityDespawn>(), 1u);
}

TEST_F(SurvivalTest, PlacementConsumesInventoryAndRejectsWhenEmpty) {
  build_survival();
  world_.set_block({10, 1, 8}, world::Block::Stone);
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 2);

  // Empty-handed placement is rejected.
  a.send(protocol::PlayerPlace{{9, 1, 9}, world::Block::Stone});
  step({&a}, 2);
  EXPECT_EQ(world_.block_at({9, 1, 9}), world::Block::Air);

  // Gather one stone, then place it.
  a.send(protocol::PlayerDig{{10, 1, 8}});
  step({&a}, 2);
  a.send(protocol::PlayerMove{{10.5, 1, 8.5}, 0, 0});
  step({&a}, 3);
  ASSERT_EQ(server_->inventory_of(a.ep(), world::Block::Stone), 1u);

  a.send(protocol::PlayerPlace{{9, 1, 9}, world::Block::Stone});
  step({&a}, 2);
  EXPECT_EQ(world_.block_at({9, 1, 9}), world::Block::Stone);
  EXPECT_EQ(server_->inventory_of(a.ep(), world::Block::Stone), 0u);
  const auto* inv = a.last<protocol::InventoryUpdate>();
  ASSERT_NE(inv, nullptr);
  EXPECT_EQ(inv->count, 0u);

  // And now it is empty again.
  a.send(protocol::PlayerPlace{{9, 2, 9}, world::Block::Stone});
  step({&a}, 2);
  EXPECT_EQ(world_.block_at({9, 2, 9}), world::Block::Air);
}

TEST_F(SurvivalTest, UnclaimedItemsExpire) {
  build_survival(SimDuration::millis(500));
  world_.set_block({12, 1, 12}, world::Block::Stone);  // out of pickup range
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 2);
  a.send(protocol::PlayerDig{{12, 1, 12}});
  step({&a}, 2);
  EXPECT_EQ(server_->items_dropped(), 1u);
  step({&a}, 15);  // > 500 ms
  EXPECT_EQ(server_->items_expired(), 1u);
  EXPECT_EQ(server_->items_picked_up(), 0u);
}

TEST_F(SurvivalTest, CreativeModeDropsNothing) {
  build("");  // default config: creative
  world_.set_block({10, 1, 8}, world::Block::Stone);
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 2);
  a.send(protocol::PlayerDig{{10, 1, 8}});
  step({&a}, 2);
  EXPECT_EQ(server_->items_dropped(), 0u);
  EXPECT_EQ(world_.block_at({10, 1, 8}), world::Block::Air);
}

// --------------------------------------------------------------- interest

TEST_F(ServerTest, WalkingAwayUnloadsChunksAndDespawns) {
  build("");
  TestClient a = make_client("alice");
  TestClient b = make_client("bob", {12.5, 1, 8.5});
  a.join();
  b.join();
  step({&a, &b}, 2);
  a.clear();

  // Walk alice east in legal steps until far beyond view+margin.
  double x = 8.5;
  for (int i = 0; i < 20; ++i) {
    x += 10.0;
    a.send(protocol::PlayerMove{{x, 1, 8.5}, 0, 0});
    step({&a, &b});
  }
  EXPECT_GT(a.count<protocol::UnloadChunk>(), 0u);
  EXPECT_EQ(a.count<protocol::EntityDespawn>(), 1u);  // bob left behind
  EXPECT_GT(a.count<protocol::ChunkData>(), 0u);      // new terrain streamed
  EXPECT_EQ(b.count<protocol::EntityDespawn>(), 1u);  // alice left bob's view
}

TEST_F(ServerTest, ReturningPlayerRespawnsForViewer) {
  build("");
  TestClient a = make_client("alice");
  TestClient b = make_client("bob", {12.5, 1, 8.5});
  a.join();
  b.join();
  step({&a, &b}, 2);

  double x = 8.5;
  for (int i = 0; i < 12; ++i) {
    x += 10.0;
    a.send(protocol::PlayerMove{{x, 1, 8.5}, 0, 0});
    step({&a, &b});
  }
  b.clear();
  for (int i = 0; i < 12; ++i) {
    x -= 10.0;
    a.send(protocol::PlayerMove{{x, 1, 8.5}, 0, 0});
    step({&a, &b});
  }
  EXPECT_EQ(b.count<protocol::EntitySpawn>(), 1u);  // alice came back
}

TEST_F(ServerTest, DyconitSubscriptionsFollowInterest) {
  build("zero");
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 2);
  // 25 chunks in view, two domains each.
  const auto sub = a.ep();
  EXPECT_TRUE(server_->dyconits().is_subscribed(
      dyconit::DyconitId::chunk_entities({0, 0}), sub));
  EXPECT_TRUE(server_->dyconits().is_subscribed(
      dyconit::DyconitId::chunk_blocks({2, 2}), sub));
  EXPECT_FALSE(server_->dyconits().is_subscribed(
      dyconit::DyconitId::chunk_blocks({3, 0}), sub));
}

// ------------------------------------------------------- federation hooks

TEST_F(ServerTest, UpdateTapSeesLocalUpdatesButNotExternalOnes) {
  build("zero");
  int taps = 0;
  server_->set_update_tap([&](const protocol::AnyMessage&, double, std::uint64_t,
                              world::ChunkPos, entity::EntityKind) { ++taps; });
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 2);
  a.clear();

  // A peer-applied block change: local players notified, tap suppressed.
  server_->apply_external_block({5, 1, 5}, world::Block::Sand);
  step({&a}, 2);
  EXPECT_EQ(taps, 0);
  EXPECT_EQ(a.count<protocol::BlockChange>() + a.count<protocol::MultiBlockChange>(), 1u);

  // A locally-originated change IS tapped.
  a.send(protocol::PlayerPlace{{6, 1, 6}, world::Block::Planks});
  step({&a}, 2);
  EXPECT_EQ(taps, 1);
}

TEST_F(ServerTest, MirrorEntityLifecycle) {
  build("zero");
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 2);
  a.clear();

  const auto id = server_->spawn_external_entity(entity::EntityKind::Player,
                                                 {10.5, 1, 8.5}, 0, "remote:9");
  step({&a}, 2);
  EXPECT_TRUE(server_->is_external_entity(id));
  ASSERT_EQ(a.count<protocol::EntitySpawn>(), 1u);
  EXPECT_EQ(a.last<protocol::EntitySpawn>()->name, "remote:9");

  server_->move_external_entity(id, {11.5, 1, 8.5}, 90.0f, 0.0f, 1.0);
  step({&a}, 2);
  EXPECT_GE(a.total_moves(), 1u);

  server_->remove_external_entity(id);
  step({&a}, 2);
  EXPECT_EQ(a.count<protocol::EntityDespawn>(), 1u);
  EXPECT_EQ(server_->entities().find(id), nullptr);
  EXPECT_FALSE(server_->is_external_entity(id));
}

TEST_F(ServerTest, AuthorityPredicateRejectsForeignEdits) {
  ServerConfig cfg;
  cfg.view_distance = 2;
  cfg.max_chunk_sends_per_tick = 100;
  cfg.use_dyconits = false;
  cfg.owns_chunk = [](world::ChunkPos c) { return c.x < 0; };  // owns west only
  cfg.net_cost_per_frame = SimDuration::micros(0);
  cfg.net_cost_per_byte_ns = 0.0;
  cfg.spawn_provider = [this](const std::string& name) { return spawns_[name]; };
  server_ = std::make_unique<GameServer>(clock_, net_, world_, nullptr, std::move(cfg));

  TestClient a = make_client("alice", {-2.5, 1, 0.5});
  a.join();
  step({&a}, 2);
  a.send(protocol::PlayerPlace{{-3, 1, 0}, world::Block::Planks});  // owned
  a.send(protocol::PlayerPlace{{3, 1, 0}, world::Block::Planks});   // foreign
  step({&a}, 2);
  EXPECT_EQ(world_.block_at({-3, 1, 0}), world::Block::Planks);
  EXPECT_EQ(world_.block_at({3, 1, 0}), world::Block::Air);
}

// -------------------------------------------------------------- keepalive

TEST_F(ServerTest, KeepAliveRoundtripKeepsSession) {
  build("");
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 2);
  std::size_t keepalives = 0;
  for (int t = 0; t < 1000; ++t) {
    step({&a});
    if (a.count<protocol::KeepAlive>() > keepalives) {
      keepalives = a.count<protocol::KeepAlive>();
      a.send(protocol::KeepAliveReply{a.last<protocol::KeepAlive>()->nonce});
    }
  }
  EXPECT_GE(keepalives, 9u);
  EXPECT_EQ(server_->player_count(), 1u);
  EXPECT_EQ(server_->sessions_timed_out(), 0u);
}

TEST_F(ServerTest, KeepAliveMeasuresRtt) {
  build("");
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 2);
  EXPECT_EQ(server_->rtt_of(a.ep()).count_micros(), 0);  // not yet measured
  std::size_t seen = 0;
  for (int t = 0; t < 450; ++t) {
    step({&a});
    if (a.count<protocol::KeepAlive>() > seen) {
      seen = a.count<protocol::KeepAlive>();
      a.send(protocol::KeepAliveReply{a.last<protocol::KeepAlive>()->nonce});
    }
  }
  const SimDuration rtt = server_->rtt_of(a.ep());
  // Zero-latency links, but the reply is only processed on the next tick:
  // RTT is one-to-two ticks of scheduling delay.
  EXPECT_GT(rtt.count_millis(), 0);
  EXPECT_LE(rtt.count_millis(), 101);
  EXPECT_EQ(server_->rtt_of(99999).count_micros(), 0);  // unknown subscriber
}

TEST_F(ServerTest, SilentClientTimesOut) {
  build("");
  TestClient a = make_client("alice");
  TestClient b = make_client("bob", {12.5, 1, 8.5});
  a.join();
  b.join();
  step({&a, &b}, 2);
  // bob answers keep-alives, alice never does.
  for (int t = 0; t < 600; ++t) {
    step({&b});  // alice does not even poll
    if (const auto* ka = b.last<protocol::KeepAlive>()) {
      b.send(protocol::KeepAliveReply{ka->nonce});
    }
  }
  EXPECT_EQ(server_->player_count(), 1u);
  EXPECT_EQ(server_->sessions_timed_out(), 1u);
  EXPECT_EQ(b.count<protocol::EntityDespawn>(), 1u);  // alice despawned
}

// ------------------------------------------------------------------- chat

TEST_F(ServerTest, ChatBroadcastsToEveryone) {
  build("");
  TestClient a = make_client("alice");
  TestClient b = make_client("bob", {500.5, 1, 500.5});  // out of view range
  a.join();
  b.join();
  step({&a, &b}, 2);
  a.send(protocol::ChatSend{"hello"});
  step({&a, &b}, 2);
  ASSERT_EQ(b.count<protocol::ChatBroadcast>(), 1u);
  EXPECT_EQ(b.last<protocol::ChatBroadcast>()->text, "hello");
  EXPECT_EQ(b.last<protocol::ChatBroadcast>()->from, server_->entity_of(a.ep()));
  EXPECT_EQ(a.count<protocol::ChatBroadcast>(), 1u);  // echoed to sender
}

// ------------------------------------------------------------- disconnect

TEST_F(ServerTest, DisconnectCleansUpEverything) {
  build("zero");
  TestClient a = make_client("alice");
  TestClient b = make_client("bob", {12.5, 1, 8.5});
  a.join();
  b.join();
  step({&a, &b}, 2);
  const auto alice_entity = server_->entity_of(a.ep());
  b.clear();

  server_->disconnect(a.ep());
  step({&b}, 2);

  EXPECT_EQ(server_->player_count(), 1u);
  EXPECT_EQ(server_->entities().find(alice_entity), nullptr);
  EXPECT_EQ(b.count<protocol::EntityDespawn>(), 1u);
  EXPECT_FALSE(server_->dyconits().is_subscribed(
      dyconit::DyconitId::chunk_entities({0, 0}), a.ep()));
  // Double disconnect is harmless.
  server_->disconnect(a.ep());
}

TEST_F(ServerTest, MalformedFrameIgnored) {
  build("");
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 2);
  net::Frame junk;
  junk.tag = 13;
  junk.payload = {0xFF, 0xFF, 0xFF};
  net_.send(a.ep(), server_->endpoint(), std::move(junk));
  step({&a}, 2);
  EXPECT_EQ(server_->player_count(), 1u);  // server survives
}

TEST_F(ServerTest, TickCpuIsMeasured) {
  build("");
  TestClient a = make_client("alice");
  a.join();
  step({&a}, 5);
  EXPECT_EQ(server_->tick_cpu_ms().count(), 5u);
  EXPECT_EQ(server_->tick_count(), 5u);
}

TEST_F(ServerTest, PlayerViewsReflectSessions) {
  build("");
  TestClient a = make_client("alice");
  TestClient b = make_client("bob", {20.5, 1, 20.5});
  a.join();
  b.join();
  step({&a, &b}, 2);
  const auto views = server_->player_views();
  EXPECT_EQ(views.size(), 2u);
  for (const auto& v : views) {
    EXPECT_NE(v.sub, 0u);
    EXPECT_NE(v.entity, 0u);
  }
}

}  // namespace
}  // namespace dyconits::server
