// Tests for the Simulation experiment harness and the server-driven mob
// workload: measurement windows, paired determinism, and NPC propagation.
#include <gtest/gtest.h>

#include "bots/simulation.h"
#include "dyconit/policies/factory.h"

namespace dyconits::bots {
namespace {

SimulationConfig tiny(const std::string& policy, std::size_t players = 4) {
  SimulationConfig cfg;
  cfg.players = players;
  cfg.policy = policy;
  cfg.seed = 5;
  cfg.view_distance = 3;
  cfg.duration = SimDuration::seconds(12);
  cfg.warmup = SimDuration::seconds(4);
  cfg.workload.kind = WorkloadKind::Village;
  cfg.workload.hotspots = 1;
  cfg.joins_per_tick = 10;
  return cfg;
}

TEST(SimulationTest, MeasurementWindowExcludesWarmup) {
  Simulation sim(tiny("zero"));
  const auto r = sim.run();
  EXPECT_NEAR(r.measured_seconds, 8.0, 0.11);
  EXPECT_GT(r.egress_bytes_per_sec, 0.0);
  EXPECT_GT(r.tick_ms.count(), 150u);  // ~160 post-warmup ticks
  EXPECT_LT(r.tick_ms.count(), 170u);
}

TEST(SimulationTest, SameSeedIsBitDeterministic) {
  const auto r1 = Simulation(tiny("director")).run();
  const auto r2 = Simulation(tiny("director")).run();
  EXPECT_EQ(r1.egress_bytes_per_sec, r2.egress_bytes_per_sec);
  EXPECT_EQ(r1.dyconit_stats.enqueued, r2.dyconit_stats.enqueued);
  EXPECT_EQ(r1.dyconit_stats.coalesced, r2.dyconit_stats.coalesced);
  EXPECT_EQ(r1.updates_applied, r2.updates_applied);
}

TEST(SimulationTest, DifferentSeedsDiffer) {
  auto cfg1 = tiny("zero");
  auto cfg2 = tiny("zero");
  cfg2.seed = 6;
  const auto r1 = Simulation(cfg1).run();
  const auto r2 = Simulation(cfg2).run();
  EXPECT_NE(r1.dyconit_stats.enqueued, r2.dyconit_stats.enqueued);
}

TEST(SimulationTest, UnknownPolicyFallsBackToZero) {
  auto cfg = tiny("no-such-policy");
  Simulation sim(cfg);
  EXPECT_EQ(sim.server().policy()->name(), "zero");
}

TEST(SimulationTest, TickHookFires) {
  auto cfg = tiny("zero");
  Simulation sim(cfg);
  int calls = 0;
  sim.set_tick_hook([&](Simulation&, SimTime) { ++calls; });
  for (int i = 0; i < 10; ++i) sim.step_tick();
  EXPECT_EQ(calls, 10);
}

TEST(SimulationTest, EgressByTypeSumsNearTotal) {
  Simulation sim(tiny("director"));
  const auto r = sim.run();
  double sum = 0;
  for (const auto& [type, bytes] : r.egress_bytes_by_type) {
    sum += static_cast<double>(bytes);
  }
  EXPECT_NEAR(sum / r.measured_seconds, r.egress_bytes_per_sec,
              r.egress_bytes_per_sec * 0.02 + 64);
}

// ------------------------------------------------------------------ churn

TEST(ChurnTest, SessionsLeaveAndRejoinCleanly) {
  auto cfg = tiny("director", 8);
  cfg.duration = SimDuration::seconds(25);
  cfg.churn_per_second = 1.0;
  cfg.churn_rejoin_delay = SimDuration::seconds(1);
  Simulation sim(cfg);
  const auto r = sim.run();
  EXPECT_GT(r.churn_leaves, 5u);
  // Everyone who left long enough ago is back; late leavers may be pending.
  EXPECT_GE(r.churn_rejoins + 2, r.churn_leaves);
  EXPECT_EQ(r.decode_failures, 0u);
  // The middleware holds no subscriptions for dead sessions.
  std::size_t ghost_subs = 0;
  sim.server().dyconits().for_each([&](dyconit::Dyconit& d) {
    d.for_each_subscriber([&](dyconit::SubscriberId sub, dyconit::Bounds&,
                              const dyconit::SubscriberQueue&) {
      if (sim.server().entity_of(sub) == entity::kInvalidEntity) ++ghost_subs;
    });
  });
  EXPECT_EQ(ghost_subs, 0u);
}

TEST(ChurnTest, RejoinedBotsResumePlaying) {
  auto cfg = tiny("zero", 6);
  cfg.duration = SimDuration::seconds(25);
  cfg.churn_per_second = 0.8;
  Simulation sim(cfg);
  sim.run();
  for (const auto& bot : sim.bots()) {
    // At end of run a bot is either joined or awaiting its rejoin delay.
    if (bot->joined()) {
      EXPECT_NE(bot->self(), entity::kInvalidEntity);
    }
  }
  EXPECT_GT(sim.server().player_count(), 3u);
}

// ------------------------------------------------------------------- mobs

TEST(MobTest, MobsSpawnAndAppearToPlayers) {
  auto cfg = tiny("zero", 3);
  cfg.mobs = 10;
  Simulation sim(cfg);
  const auto r = sim.run();
  // Server hosts players + mobs.
  EXPECT_EQ(sim.server().entities().size(), 3u + 10u);
  std::size_t mob_replicas = 0;
  for (const auto& bot : sim.bots()) {
    for (const auto& [id, rep] : bot->replica_entities()) {
      if (rep.kind == entity::EntityKind::Mob) ++mob_replicas;
    }
  }
  EXPECT_GT(mob_replicas, 0u);
  EXPECT_EQ(r.decode_failures, 0u);
}

TEST(MobTest, MobsActuallyMove) {
  auto cfg = tiny("vanilla", 1);
  cfg.mobs = 8;
  Simulation sim(cfg);
  std::vector<world::Vec3> start;
  sim.server().entities().for_each([&](const entity::Entity& e) {
    if (e.kind == entity::EntityKind::Mob) start.push_back(e.pos);
  });
  ASSERT_EQ(start.size(), 8u);
  for (int i = 0; i < 200; ++i) sim.step_tick();
  double moved = 0;
  std::size_t idx = 0;
  sim.server().entities().for_each([&](const entity::Entity& e) {
    if (e.kind == entity::EntityKind::Mob) moved += world::distance(e.pos, start[idx++]);
  });
  EXPECT_GT(moved / 8.0, 2.0);  // average mob wandered at least a couple blocks
}

TEST(MobTest, MobMovementIsCoalescedByDyconits) {
  auto cfg = tiny("static:500:1000", 3);
  cfg.mobs = 12;
  Simulation sim(cfg);
  const auto r = sim.run();
  EXPECT_GT(r.dyconit_stats.coalesced, 0u);
}

TEST(MobTest, MobsAreDeterministic) {
  auto cfg = tiny("vanilla", 2);
  cfg.mobs = 5;
  Simulation a(cfg), b(cfg);
  for (int i = 0; i < 100; ++i) {
    a.step_tick();
    b.step_tick();
  }
  std::vector<world::Vec3> pa, pb;
  a.server().entities().for_each([&](const entity::Entity& e) { pa.push_back(e.pos); });
  b.server().entities().for_each([&](const entity::Entity& e) { pb.push_back(e.pos); });
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LT(world::distance(pa[i], pb[i]), 1e-12);
  }
}

}  // namespace
}  // namespace dyconits::bots
