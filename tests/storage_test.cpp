// Unit tests for world persistence (region files).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/rng.h"
#include "world/storage.h"
#include "world/terrain.h"

namespace dyconits::world {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dyco_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(StorageTest, SaveLoadRoundtrip) {
  World original(std::make_unique<TerrainGenerator>(42));
  // Touch a spread of chunks (including negative regions) and edit some.
  for (int cx = -9; cx <= 9; cx += 3) {
    for (int cz = -9; cz <= 9; cz += 3) original.chunk_at({cx, cz});
  }
  original.set_block({5, 30, 5}, Block::Planks);
  original.set_block({-100, 10, 77}, Block::Cobblestone);

  WorldStorage storage(dir_.string());
  std::size_t written = 0;
  ASSERT_TRUE(storage.save(original, &written));
  EXPECT_EQ(written, original.loaded_chunk_count());

  World restored;  // no generator: everything must come from storage
  std::size_t loaded = 0;
  ASSERT_TRUE(storage.load(restored, &loaded));
  EXPECT_EQ(loaded, written);

  std::size_t compared = 0;
  original.for_each_chunk([&](const Chunk& c) {
    const Chunk* rc = restored.find_chunk(c.pos());
    ASSERT_NE(rc, nullptr) << c.pos().x << "," << c.pos().z;
    for (int x = 0; x < kChunkSize; ++x) {
      for (int z = 0; z < kChunkSize; ++z) {
        for (int y = 0; y < kWorldHeight; ++y) {
          ASSERT_EQ(rc->get_local(x, y, z), c.get_local(x, y, z));
          ++compared;
        }
      }
    }
  });
  EXPECT_GT(compared, 0u);
  EXPECT_EQ(restored.block_at({5, 30, 5}), Block::Planks);
  EXPECT_EQ(restored.block_at({-100, 10, 77}), Block::Cobblestone);
}

TEST_F(StorageTest, LoadChunkSelective) {
  World w(std::make_unique<TerrainGenerator>(7));
  w.set_block({3, 25, 3}, Block::Wood);
  w.chunk_at({5, 5});
  WorldStorage storage(dir_.string());
  ASSERT_TRUE(storage.save(w));

  World partial;
  ASSERT_TRUE(storage.load_chunk(partial, {0, 0}));
  EXPECT_EQ(partial.loaded_chunk_count(), 1u);
  EXPECT_EQ(partial.block_at({3, 25, 3}), Block::Wood);
  EXPECT_FALSE(storage.load_chunk(partial, {99, 99}));  // never saved
}

TEST_F(StorageTest, HasChunkProbes) {
  World w;
  w.chunk_at({2, 2});
  WorldStorage storage(dir_.string());
  ASSERT_TRUE(storage.save(w));
  EXPECT_TRUE(storage.has_chunk({2, 2}));
  EXPECT_FALSE(storage.has_chunk({3, 2}));   // same region, absent slot
  EXPECT_FALSE(storage.has_chunk({50, 50})); // missing region file
}

TEST_F(StorageTest, ResaveOverwrites) {
  World w;
  w.set_block({1, 1, 1}, Block::Stone);
  WorldStorage storage(dir_.string());
  ASSERT_TRUE(storage.save(w));
  w.set_block({1, 1, 1}, Block::Sand);
  ASSERT_TRUE(storage.save(w));

  World restored;
  ASSERT_TRUE(storage.load(restored));
  EXPECT_EQ(restored.block_at({1, 1, 1}), Block::Sand);
}

TEST_F(StorageTest, LoadFromMissingDirectoryFails) {
  WorldStorage storage((dir_ / "nope").string());
  World w;
  EXPECT_FALSE(storage.load(w));
}

TEST_F(StorageTest, SaveEmptyWorldCreatesDirectory) {
  World w;
  WorldStorage storage(dir_.string());
  std::size_t written = 99;
  ASSERT_TRUE(storage.save(w, &written));
  EXPECT_EQ(written, 0u);
  World restored;
  std::size_t loaded = 99;
  EXPECT_TRUE(storage.load(restored, &loaded));
  EXPECT_EQ(loaded, 0u);
}

TEST_F(StorageTest, CorruptMagicRejected) {
  World w;
  w.chunk_at({0, 0});
  WorldStorage storage(dir_.string());
  ASSERT_TRUE(storage.save(w));
  // Clobber the magic of the region file.
  const auto path = dir_ / "r.0.0.dyr";
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(0);
  f.write("XXXX", 4);
  f.close();
  World restored;
  EXPECT_FALSE(storage.load(restored));
  EXPECT_FALSE(storage.has_chunk({0, 0}));
}

TEST_F(StorageTest, TruncatedFileRejected) {
  World w;
  w.chunk_at({0, 0});
  WorldStorage storage(dir_.string());
  ASSERT_TRUE(storage.save(w));
  const auto path = dir_ / "r.0.0.dyr";
  std::filesystem::resize_file(path, 20);  // mid-header
  World restored;
  EXPECT_FALSE(storage.load(restored));
}

TEST_F(StorageTest, RegionMathForNegativeChunks) {
  EXPECT_EQ(WorldStorage::region_of({0, 0}), (ChunkPos{0, 0}));
  EXPECT_EQ(WorldStorage::region_of({7, 7}), (ChunkPos{0, 0}));
  EXPECT_EQ(WorldStorage::region_of({8, 0}), (ChunkPos{1, 0}));
  EXPECT_EQ(WorldStorage::region_of({-1, -8}), (ChunkPos{-1, -1}));
  EXPECT_EQ(WorldStorage::region_of({-9, 0}), (ChunkPos{-2, 0}));
}

// Property sweep: random worlds roundtrip exactly, whatever the content.
class StorageFuzz : public StorageTest, public ::testing::WithParamInterface<int> {};

TEST_P(StorageFuzz, RandomWorldRoundtrips) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  World w;
  const int edits = 500;
  for (int i = 0; i < edits; ++i) {
    const world::BlockPos pos{static_cast<std::int32_t>(rng.next_in(-100, 100)),
                              static_cast<std::int32_t>(rng.next_in(0, kWorldHeight - 1)),
                              static_cast<std::int32_t>(rng.next_in(-100, 100))};
    w.set_block(pos, static_cast<Block>(rng.next_below(kBlockPaletteSize)));
  }
  WorldStorage storage(dir_.string());
  ASSERT_TRUE(storage.save(w));
  World restored;
  ASSERT_TRUE(storage.load(restored));
  ASSERT_EQ(restored.loaded_chunk_count(), w.loaded_chunk_count());
  // Re-check with an independent RNG replay of the same edit positions.
  Rng replay(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int i = 0; i < edits; ++i) {
    const world::BlockPos pos{static_cast<std::int32_t>(replay.next_in(-100, 100)),
                              static_cast<std::int32_t>(replay.next_in(0, kWorldHeight - 1)),
                              static_cast<std::int32_t>(replay.next_in(-100, 100))};
    replay.next_below(kBlockPaletteSize);
    ASSERT_EQ(restored.block_at(pos), w.block_at(pos));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageFuzz, ::testing::Values(1, 2, 3, 4, 5));

TEST_F(StorageTest, ServerWorldSurvivesRestart) {
  // End-to-end: modified world saved, server restarted on the restored
  // world, modifications visible to a fresh observer.
  World session1(std::make_unique<TerrainGenerator>(11));
  session1.spawn_position(0, 0);
  session1.set_block({4, 35, 4}, Block::Planks);
  WorldStorage storage(dir_.string());
  ASSERT_TRUE(storage.save(session1));

  World session2;  // restart without the generator: pure restore
  ASSERT_TRUE(storage.load(session2));
  EXPECT_EQ(session2.block_at({4, 35, 4}), Block::Planks);
  const int h1 = session1.surface_height(8, 8);
  EXPECT_EQ(session2.surface_height(8, 8), h1);
}

}  // namespace
}  // namespace dyconits::world
