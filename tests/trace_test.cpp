// Unit tests for src/trace: ring-buffer recording, tick-phase profiling,
// and the Chrome trace_event exporter. The exporter tests parse the emitted
// JSON with a minimal recursive-descent parser so a malformed file fails
// here instead of silently refusing to load in chrome://tracing.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bots/simulation.h"
#include "trace/export.h"
#include "trace/tick_profiler.h"
#include "trace/trace.h"
#include "util/thread_pool.h"

namespace dyconits::trace {
namespace {

// --------------------------------------------------------- tiny JSON parser

struct Json {
  enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Json> items;
  std::map<std::string, Json> fields;

  const Json& at(const std::string& key) const {
    const auto it = fields.find(key);
    if (it == fields.end()) {
      ADD_FAILURE() << "missing key: " << key;
      static const Json null;
      return null;
    }
    return it->second;
  }
  bool has(const std::string& key) const { return fields.count(key) > 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : s_(std::move(text)) {}

  Json parse() {
    const Json v = value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing garbage after JSON document";
    return v;
  }

  bool ok() const { return ok_; }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void expect(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c) {
      ok_ = false;
      ADD_FAILURE() << "expected '" << c << "' at offset " << pos_;
      return;
    }
    ++pos_;
  }

  Json value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': case 'f': return boolean();
      case 'n': literal("null"); return {};
      default: return number();
    }
  }

  Json object() {
    Json v;
    v.kind = Json::Object;
    expect('{');
    if (peek() == '}') { ++pos_; return v; }
    while (ok_) {
      Json key = string_value();
      expect(':');
      v.fields[key.str] = value();
      if (peek() == ',') { ++pos_; continue; }
      break;
    }
    expect('}');
    return v;
  }

  Json array() {
    Json v;
    v.kind = Json::Array;
    expect('[');
    if (peek() == ']') { ++pos_; return v; }
    while (ok_) {
      v.items.push_back(value());
      if (peek() == ',') { ++pos_; continue; }
      break;
    }
    expect(']');
    return v;
  }

  Json string_value() {
    Json v;
    v.kind = Json::String;
    expect('"');
    while (ok_ && pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) { ok_ = false; break; }
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) { ok_ = false; break; }
            c = static_cast<char>(std::stoi(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: ok_ = false; ADD_FAILURE() << "bad escape \\" << esc; return v;
        }
      }
      v.str += c;
    }
    expect('"');
    return v;
  }

  Json number() {
    Json v;
    v.kind = Json::Number;
    skip_ws();
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) || s_[end] == '-' ||
            s_[end] == '+' || s_[end] == '.' || s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) {
      ok_ = false;
      ADD_FAILURE() << "expected number at offset " << pos_;
      return v;
    }
    v.num = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  Json boolean() {
    Json v;
    v.kind = Json::Bool;
    if (peek() == 't') { literal("true"); v.b = true; }
    else { literal("false"); v.b = false; }
    return v;
  }

  void literal(const std::string& lit) {
    skip_ws();
    if (s_.compare(pos_, lit.size(), lit) != 0) {
      ok_ = false;
      ADD_FAILURE() << "expected '" << lit << "' at offset " << pos_;
      return;
    }
    pos_ += lit.size();
  }

  std::string s_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// The tracer is a process-wide singleton; every test starts from a clean
// slate and leaves one behind.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_tracer(); }
  void TearDown() override { reset_tracer(); }

  static void reset_tracer() {
    auto& t = Tracer::instance();
    t.stop_recording();
    t.clear();
    t.set_profiler(nullptr);
    t.set_sim_clock(nullptr);
    t.set_tick(0);
  }

  static void busy_spin_ns(std::int64_t ns) {
    const auto start = std::chrono::steady_clock::now();
    while ((std::chrono::steady_clock::now() - start).count() < ns) {
    }
  }
};

// ------------------------------------------------------------------ Tracer

TEST_F(TraceTest, InactiveScopesRecordNothing) {
  EXPECT_FALSE(Tracer::instance().active());
  {
    TRACE_SCOPE("test.span");
  }
  TRACE_INSTANT("test.marker");
  EXPECT_EQ(Tracer::instance().recorded(), 0u);
}

TEST_F(TraceTest, RecordsSpansAndInstants) {
  Tracer::instance().start_recording(16);
  {
    TRACE_SCOPE("test.outer");
    busy_spin_ns(1000);
    TRACE_INSTANT("test.marker");
  }
  const auto records = Tracer::instance().snapshot();
  ASSERT_EQ(records.size(), 2u);
  // Scopes complete after their contents: the instant lands first.
  EXPECT_STREQ(records[0].name, "test.marker");
  EXPECT_TRUE(records[0].instant);
  EXPECT_EQ(records[0].wall_dur_ns, 0);
  EXPECT_STREQ(records[1].name, "test.outer");
  EXPECT_FALSE(records[1].instant);
  EXPECT_GT(records[1].wall_dur_ns, 0);
  // No simulated clock installed.
  EXPECT_EQ(records[1].sim_us, -1);
}

TEST_F(TraceTest, RingOverwritesOldestAndCountsDrops) {
  Tracer::instance().start_recording(4);
  for (int i = 0; i < 10; ++i) {
    TRACE_INSTANT("test.tick");
  }
  auto& t = Tracer::instance();
  EXPECT_EQ(t.recorded(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  const auto records = t.snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-to-newest: wall timestamps must be non-decreasing after unwrap.
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_GE(records[i].wall_start_ns, records[i - 1].wall_start_ns);
  }
}

TEST_F(TraceTest, StampsSimTimeAndTick) {
  SimClock clock;
  clock.advance(SimDuration::millis(250));
  auto& t = Tracer::instance();
  t.set_sim_clock(&clock);
  t.set_tick(7);
  t.start_recording(4);
  TRACE_INSTANT("test.stamped");
  const auto records = t.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].sim_us, 250'000);
  EXPECT_EQ(records[0].tick, 7u);
}

TEST_F(TraceTest, WorkerThreadSpansMergeWithoutCorruption) {
  auto& t = Tracer::instance();
  t.start_recording(1 << 12);
  constexpr std::size_t kShards = 4;
  constexpr int kSpansPerShard = 50;
  {
    TRACE_SCOPE("test.main");
    util::ThreadPool pool(kShards);
    pool.run_shards([](std::size_t) {
      for (int i = 0; i < kSpansPerShard; ++i) {
        TRACE_SCOPE("test.worker");
      }
    });
  }
  const auto records = t.snapshot();
  // Every span from every executor survives: nothing lost, nothing torn.
  ASSERT_EQ(records.size(), kShards * kSpansPerShard + 1);
  std::map<std::uint32_t, int> by_tid;
  int workers = 0;
  for (const auto& r : records) {
    ASSERT_NE(r.name, nullptr);
    if (std::string(r.name) == "test.worker") {
      ++workers;
      by_tid[r.tid] += 1;
    } else {
      EXPECT_STREQ(r.name, "test.main");
    }
    EXPECT_GE(r.wall_dur_ns, 0);
  }
  EXPECT_EQ(workers, kShards * kSpansPerShard);
  // One ring per executor (the caller ran shard 0), each fully populated.
  ASSERT_EQ(by_tid.size(), kShards);
  for (const auto& [tid, n] : by_tid) EXPECT_EQ(n, kSpansPerShard) << "tid " << tid;

  // The merged stream still exports as valid Chrome JSON.
  std::ostringstream os;
  write_chrome_trace(os, records);
  JsonParser parser(os.str());
  const Json root = parser.parse();
  EXPECT_EQ(root.at("traceEvents").items.size(), records.size() + 1);  // + metadata
}

TEST_F(TraceTest, ProfilerOnlyObservesInstallingThreadSpans) {
  TickProfiler p;
  p.add_phase("test.phase");
  p.begin_tick(1);
  {
    ProfilerScope scope(p);  // installed on this (the "tick") thread
    {
      TRACE_SCOPE("test.phase");
      busy_spin_ns(1000);
    }
    // A worker emitting the same phase name for much longer must not feed
    // the profiler: per-phase tick accounting is the tick thread's story.
    util::ThreadPool pool(2);
    pool.run_shards([](std::size_t shard) {
      if (shard == 1) {
        TRACE_SCOPE("test.phase");
        busy_spin_ns(3'000'000);
      }
    });
  }
  p.end_tick(0.001);
  const auto r = p.report();
  ASSERT_EQ(r.phases.size(), 1u);
  EXPECT_GT(r.phases[0].ms.max(), 0.0);
  EXPECT_LT(r.phases[0].ms.max(), 3.0) << "worker span leaked into the tick profiler";
}

// ------------------------------------------------------------ TickProfiler

TEST_F(TraceTest, ProfilerAggregatesRegisteredPhases) {
  TickProfiler p;
  p.add_phase("phase.a");
  p.add_phase("phase.b");
  p.add_phase("phase.sub", TickProfiler::PhaseKind::Nested);

  for (std::uint64_t tick = 1; tick <= 3; ++tick) {
    p.begin_tick(tick);
    p.observe("phase.a", 1'000'000);   // 1 ms
    p.observe("phase.a", 500'000);     // same phase twice: accumulates
    p.observe("phase.b", 2'000'000);   // 2 ms
    p.observe("phase.sub", 250'000);   // nested: excluded from coverage
    p.observe("phase.unknown", 9'000'000);  // unregistered: ignored
    p.end_tick(3.5);
  }

  const auto r = p.report();
  EXPECT_EQ(r.ticks, 3u);
  ASSERT_EQ(r.phases.size(), 3u);
  EXPECT_EQ(r.phases[0].name, "phase.a");
  EXPECT_DOUBLE_EQ(r.phases[0].ms.mean(), 1.5);
  EXPECT_DOUBLE_EQ(r.phases[1].ms.mean(), 2.0);
  EXPECT_DOUBLE_EQ(r.phases[2].ms.mean(), 0.25);
  // Coverage counts top-level phases only: (1.5 + 2.0) / 3.5 = 1.0.
  EXPECT_DOUBLE_EQ(r.phase_mean_sum(), 3.5);
  EXPECT_NEAR(r.coverage(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.tick_ms.mean(), 3.5);
}

TEST_F(TraceTest, ProfilerIgnoresSpansOutsideTick) {
  TickProfiler p;
  p.add_phase("phase.a");
  p.observe("phase.a", 1'000'000);  // before any begin_tick
  p.begin_tick(1);
  p.end_tick(1.0);
  p.observe("phase.a", 1'000'000);  // after end_tick
  const auto r = p.report();
  EXPECT_DOUBLE_EQ(r.phases[0].ms.mean(), 0.0);
}

TEST_F(TraceTest, ProfilerModeledCostAndReset) {
  TickProfiler p;
  p.add_phase("net.modeled");
  p.begin_tick(1);
  p.add_modeled_ms("net.modeled", 2.5);
  p.end_tick(2.5);
  EXPECT_DOUBLE_EQ(p.report().phases[0].ms.mean(), 2.5);

  p.reset();  // clears stats, keeps registrations
  EXPECT_TRUE(p.report().empty());
  p.begin_tick(2);
  p.add_modeled_ms("net.modeled", 1.0);
  p.end_tick(1.0);
  EXPECT_DOUBLE_EQ(p.report().phases[0].ms.mean(), 1.0);
}

TEST_F(TraceTest, ProfilerScopeReceivesSpans) {
  TickProfiler p;
  p.add_phase("test.phase");
  p.begin_tick(1);
  {
    ProfilerScope scope(p);
    TRACE_SCOPE("test.phase");
    busy_spin_ns(1000);
  }
  p.end_tick(0.001);
  EXPECT_EQ(Tracer::instance().profiler(), nullptr);  // restored
  EXPECT_GT(p.report().phases[0].ms.mean(), 0.0);
}

// --------------------------------------------------------------- exporters

TEST_F(TraceTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
}

TEST_F(TraceTest, ChromeTraceIsValidAndComplete) {
  SimClock clock;
  clock.advance(SimDuration::seconds(1));
  auto& t = Tracer::instance();
  t.set_sim_clock(&clock);
  t.set_tick(42);
  t.start_recording(64);
  {
    TRACE_SCOPE("server.tick");
    {
      TRACE_SCOPE("server.dispatch");
      busy_spin_ns(2000);
    }
    TRACE_INSTANT("test.marker");
  }

  std::ostringstream os;
  write_chrome_trace(os, t.snapshot());

  JsonParser parser(os.str());
  const Json doc = parser.parse();
  ASSERT_TRUE(parser.ok()) << os.str();
  ASSERT_EQ(doc.kind, Json::Object);
  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, Json::Array);
  // Metadata event + dispatch span + marker + tick span.
  ASSERT_EQ(events.items.size(), 4u);

  std::size_t spans = 0, instants = 0, meta = 0;
  for (const Json& e : events.items) {
    ASSERT_EQ(e.kind, Json::Object);
    ASSERT_TRUE(e.has("name"));
    ASSERT_TRUE(e.has("ph"));
    const std::string ph = e.at("ph").str;
    if (ph == "M") {
      ++meta;
      continue;
    }
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("pid"));
    EXPECT_TRUE(e.has("tid"));
    // Dual timestamps: simulated time and tick ride along in args.
    EXPECT_DOUBLE_EQ(e.at("args").at("sim_us").num, 1'000'000.0);
    EXPECT_DOUBLE_EQ(e.at("args").at("tick").num, 42.0);
    if (ph == "X") {
      ++spans;
      EXPECT_GE(e.at("dur").num, 0.0);
    } else if (ph == "i") {
      ++instants;
    } else {
      ADD_FAILURE() << "unexpected ph: " << ph;
    }
  }
  EXPECT_EQ(meta, 1u);
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(instants, 1u);

  // Nesting must survive the export: dispatch starts at or after tick
  // starts and ends at or before tick ends (chrome://tracing draws the
  // flame graph from these intervals).
  const Json* tick = nullptr;
  const Json* dispatch = nullptr;
  for (const Json& e : events.items) {
    if (e.at("name").str == "server.tick") tick = &e;
    if (e.at("name").str == "server.dispatch") dispatch = &e;
  }
  ASSERT_NE(tick, nullptr);
  ASSERT_NE(dispatch, nullptr);
  EXPECT_GE(dispatch->at("ts").num, tick->at("ts").num);
  EXPECT_LE(dispatch->at("ts").num + dispatch->at("dur").num,
            tick->at("ts").num + tick->at("dur").num);
}

TEST_F(TraceTest, ChromeTraceOfEmptySnapshotIsValid) {
  std::ostringstream os;
  write_chrome_trace(os, {});
  JsonParser parser(os.str());
  const Json doc = parser.parse();
  ASSERT_TRUE(parser.ok());
  EXPECT_EQ(doc.at("traceEvents").items.size(), 1u);  // metadata only
}

TEST_F(TraceTest, PhaseTableListsPhasesAndCoverage) {
  TickProfiler p;
  p.add_phase("phase.a");
  p.add_phase("phase.sub", TickProfiler::PhaseKind::Nested);
  p.begin_tick(1);
  p.observe("phase.a", 2'000'000);
  p.observe("phase.sub", 500'000);
  p.end_tick(2.0);

  std::ostringstream os;
  print_phase_table(os, p.report());
  const std::string table = os.str();
  EXPECT_NE(table.find("phase.a"), std::string::npos);
  EXPECT_NE(table.find("phase.sub"), std::string::npos);
  EXPECT_NE(table.find("coverage"), std::string::npos);
  EXPECT_NE(table.find("nested"), std::string::npos);
}

// ------------------------------------------------- end-to-end (simulation)

// The acceptance invariant for the instrumentation: the registered
// top-level phases tile the tick, so their mean sum stays within 10% of
// the measured mean tick time.
TEST_F(TraceTest, SimulationPhaseSumMatchesTickTime) {
  bots::SimulationConfig cfg;
  cfg.players = 8;
  cfg.duration = SimDuration::seconds(10);
  cfg.warmup = SimDuration::seconds(4);
  cfg.policy = "director";
  cfg.seed = 7;
  cfg.profile_phases = true;

  Tracer::instance().start_recording(1 << 14);
  bots::Simulation sim(cfg);
  const auto result = sim.run();

  const auto& phases = result.phases;
  ASSERT_FALSE(phases.empty());
  EXPECT_GT(phases.ticks, 50u);
  EXPECT_GT(phases.tick_ms.mean(), 0.0);
  EXPECT_NEAR(phases.coverage(), 1.0, 0.10)
      << "phase sum " << phases.phase_mean_sum() << " ms vs tick mean "
      << phases.tick_ms.mean() << " ms";

  // The run's ring buffer exports to valid Chrome JSON too.
  std::ostringstream os;
  write_chrome_trace(os, Tracer::instance().snapshot());
  JsonParser parser(os.str());
  const Json doc = parser.parse();
  ASSERT_TRUE(parser.ok());
  EXPECT_GT(doc.at("traceEvents").items.size(), 100u);
}

}  // namespace
}  // namespace dyconits::trace
