// Transport-layer tests (DESIGN.md §12): the pure UDP datagram codec
// (framing, fragmentation, reassembly), damaged-datagram handling feeding
// the application's sequence-gap detection, and real-socket smoke tests for
// UdpTransport (skipped where sockets are unavailable).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "bots/bot.h"
#include "net/buffer_pool.h"
#include "net/fault_transport.h"
#include "net/sim_network.h"
#include "net/udp_framing.h"
#include "net/udp_transport.h"
#include "protocol/codec.h"
#include "world/world.h"

namespace dyconits {
namespace {

using net::Frame;
using namespace net::udpwire;

Frame make_frame(std::uint8_t tag, std::uint32_t seq, std::size_t payload_len) {
  Frame f;
  f.tag = tag;
  f.seq = seq;
  f.payload.resize(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i) {
    f.payload[i] = static_cast<std::uint8_t>((i * 31 + tag) & 0xFF);
  }
  return f;
}

TEST(UdpFramingTest, AppendParseRoundTrip) {
  std::vector<Frame> in;
  in.push_back(make_frame(3, 0, 0));        // unsequenced, empty
  in.push_back(make_frame(7, 1, 5));
  in.push_back(make_frame(11, 0xFFFFFFFF, 300));  // max seq, multi-byte varints

  std::vector<std::uint8_t> body;
  std::size_t expected = 0;
  for (const auto& f : in) {
    append_frame(body, f);
    expected += f.wire_size();
  }
  EXPECT_EQ(body.size(), expected);  // append_frame is exactly wire_size()

  std::vector<Frame> out;
  ASSERT_TRUE(parse_frames(body.data(), body.size(), out));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].tag, in[i].tag);
    EXPECT_EQ(out[i].seq, in[i].seq);
    EXPECT_EQ(out[i].payload, in[i].payload);
  }
}

TEST(UdpFramingTest, TruncatedBodyKeepsPrefixAndFails) {
  std::vector<std::uint8_t> body;
  const Frame a = make_frame(2, 1, 40);
  const Frame b = make_frame(2, 2, 40);
  append_frame(body, a);
  append_frame(body, b);
  body.resize(body.size() - 10);  // tear the tail off frame b

  std::vector<Frame> out;
  EXPECT_FALSE(parse_frames(body.data(), body.size(), out));
  ASSERT_EQ(out.size(), 1u);  // the undamaged prefix survives
  EXPECT_EQ(out[0].payload, a.payload);
}

TEST(UdpFramingTest, FragmentationRoundTripAtMtuEdges) {
  const std::size_t mtu = 256;
  // wire_size + 1 (kind byte) one over the MTU: the smallest frame that
  // must fragment — and well past it. MTU-1 exact fits stay inline and are
  // covered by the loopback smoke test.
  for (const std::size_t over : {std::size_t{1}, std::size_t{2}, std::size_t{2000}}) {
    const std::size_t payload = mtu - 1 + over;  // header ~7 bytes, all > mtu
    const Frame f = make_frame(14, 1234567, payload);
    ASSERT_GT(f.wire_size() + 1, mtu);

    const auto datagrams = fragment_frame(f, mtu, /*msg_id=*/42);
    ASSERT_GT(datagrams.size(), 1u);
    for (const auto& d : datagrams) {
      EXPECT_LE(d.size(), mtu);
      ASSERT_GE(d.size(), 2u);
      EXPECT_EQ(d[0], static_cast<std::uint8_t>(DatagramKind::Fragment));
    }

    Reassembler r;
    std::optional<Frame> got;
    for (const auto& d : datagrams) {
      ASSERT_FALSE(got.has_value());  // only the last fragment completes
      got = r.feed(d.data() + 1, d.size() - 1, SimTime::zero());
    }
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->tag, f.tag);
    EXPECT_EQ(got->seq, f.seq);
    EXPECT_EQ(got->payload, f.payload);
    EXPECT_EQ(r.partial_count(), 0u);
    net::BufferPool::instance().release(std::move(got->payload));
  }
}

TEST(UdpFramingTest, ReorderedAndDuplicatedFragments) {
  const Frame f = make_frame(14, 7, 1000);
  const auto datagrams = fragment_frame(f, 256, /*msg_id=*/9);
  ASSERT_GE(datagrams.size(), 3u);

  Reassembler r;
  // Deliver in reverse, duplicating the middle fragment.
  std::optional<Frame> got;
  for (std::size_t i = datagrams.size(); i-- > 0;) {
    got = r.feed(datagrams[i].data() + 1, datagrams[i].size() - 1, SimTime::zero());
    if (i == 1) {
      auto dup = r.feed(datagrams[i].data() + 1, datagrams[i].size() - 1, SimTime::zero());
      EXPECT_FALSE(dup.has_value());
    }
  }
  ASSERT_TRUE(got.has_value());  // reverse order still completes on the last piece
  EXPECT_EQ(got->payload, f.payload);
  EXPECT_EQ(r.stats().duplicate_fragments, 1u);
  EXPECT_EQ(r.stats().completed, 1u);
  net::BufferPool::instance().release(std::move(got->payload));

  // Garbage header: counted, not crashed.
  const std::uint8_t junk[3] = {0xFF, 0xFF, 0xFF};
  EXPECT_FALSE(r.feed(junk, sizeof(junk), SimTime::zero()).has_value());
  EXPECT_EQ(r.stats().malformed, 1u);
}

TEST(UdpFramingTest, StalePartialsAreGarbageCollected) {
  const Frame f = make_frame(14, 7, 1000);
  const auto datagrams = fragment_frame(f, 256, /*msg_id=*/3);
  ASSERT_GE(datagrams.size(), 2u);

  Reassembler r(SimDuration::seconds(5));
  EXPECT_FALSE(r.feed(datagrams[0].data() + 1, datagrams[0].size() - 1, SimTime::zero()));
  EXPECT_EQ(r.partial_count(), 1u);
  r.gc(SimTime::zero() + SimDuration::seconds(4));
  EXPECT_EQ(r.partial_count(), 1u);  // within the window: kept
  r.gc(SimTime::zero() + SimDuration::seconds(6));
  EXPECT_EQ(r.partial_count(), 0u);  // a lost fragment surfaces as a seq gap
  EXPECT_EQ(r.stats().stale_dropped, 1u);
}

// Lost and duplicated datagrams manifest to the application as holes and
// repeats in the frame sequence; the bot's gap detector must classify them.
TEST(TransportGapTest, DamagedStreamsFeedGapDetection) {
  SimClock clock;
  net::SimNetwork net(clock, 1);
  world::World world;
  const net::EndpointId server = net.create_endpoint("server");
  bots::BotClient bot(clock, net, world, server, "bot", 1, {});
  net.connect(bot.endpoint(), server, {SimDuration(0), 0.0, true});

  const auto push = [&](std::uint32_t seq) {
    Frame f = protocol::encode(protocol::KeepAlive{seq});
    f.seq = seq;
    net.send(server, bot.endpoint(), std::move(f));
  };

  push(1);
  bot.poll_inbound();
  EXPECT_EQ(bot.gaps_detected(), 0u);

  push(3);  // a dropped datagram: seq 2 never arrives
  bot.poll_inbound();
  EXPECT_EQ(bot.gaps_detected(), 1u);

  push(3);  // a duplicated datagram replays an already-seen frame
  bot.poll_inbound();
  EXPECT_EQ(bot.dup_or_old_frames(), 1u);

  push(2);  // late arrival: the hole was reorder after all
  push(4);
  bot.poll_inbound();
  EXPECT_EQ(bot.gaps_detected(), 1u);  // unchanged; hole filled within grace
  EXPECT_EQ(bot.resyncs_requested(), 0u);
}

// -- real sockets below; skip where the environment forbids them --

struct Loopback {
  SimClock clock;
  std::unique_ptr<net::UdpTransport> a, b;
  net::EndpointId a_local = net::kInvalidEndpoint;
  net::EndpointId b_local = net::kInvalidEndpoint;
  net::EndpointId b_to_a = net::kInvalidEndpoint;

  explicit Loopback(net::UdpConfig base = {}) {
    base.bind_host = "127.0.0.1";
    base.bind_port = 0;
    a = std::make_unique<net::UdpTransport>(clock, base);
    b = std::make_unique<net::UdpTransport>(clock, base);
    if (!a->valid() || !b->valid()) return;
    a_local = a->create_endpoint("alpha");
    b_local = b->create_endpoint("beta");
    b_to_a = b->add_peer("127.0.0.1", a->local_port(), "alpha");
  }
  bool ok() const { return a && a->valid() && b && b->valid(); }
};

TEST(UdpTransportTest, LoopbackEchoSmoke) {
  Loopback lo;
  if (!lo.ok()) GTEST_SKIP() << "no usable UDP sockets: " << lo.a->error();

  // One coalescable frame and one that must fragment (64 KiB >> MTU).
  const Frame small = make_frame(5, 1, 32);
  const Frame big = make_frame(11, 2, 64 * 1024);
  ASSERT_TRUE(lo.b->send(lo.b_local, lo.b_to_a, small));
  ASSERT_TRUE(lo.b->send(lo.b_local, lo.b_to_a, big));
  lo.b->flush_egress();

  std::vector<net::Delivery> got;
  for (int spins = 0; spins < 2000 && got.size() < 2; ++spins) {
    lo.a->pump(/*timeout_ms=*/5);
    for (auto& d : lo.a->poll(lo.a_local)) got.push_back(std::move(d));
  }
  ASSERT_EQ(got.size(), 2u) << "frames lost on loopback";
  EXPECT_EQ(got[0].frame.payload, small.payload);
  EXPECT_EQ(got[1].frame.payload, big.payload);
  EXPECT_EQ(got[1].frame.seq, 2u);
  EXPECT_GE(lo.a->stats().frames_reassembled, 1u);

  // The sender was auto-registered from its source address; echo back.
  const net::EndpointId b_peer = got[0].from;
  EXPECT_TRUE(lo.a->connected(lo.a_local, b_peer));
  ASSERT_TRUE(lo.a->send(lo.a_local, b_peer, make_frame(6, 1, 8)));
  lo.a->flush_egress();
  std::vector<net::Delivery> back;
  for (int spins = 0; spins < 2000 && back.empty(); ++spins) {
    lo.b->pump(/*timeout_ms=*/5);
    back = lo.b->poll(lo.b_local);
  }
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].frame.tag, 6);

  // Modeled frame accounting matches the sim's semantics on both ends.
  EXPECT_EQ(lo.b->egress_frames(lo.b_local), 2u);
  EXPECT_EQ(lo.a->ingress_frames(lo.a_local), 2u);
  EXPECT_EQ(lo.a->egress_bytes(lo.a_local), lo.b->ingress_bytes(lo.b_local));

  for (auto& d : got) net::BufferPool::instance().release(std::move(d.frame.payload));
  for (auto& d : back) net::BufferPool::instance().release(std::move(d.frame.payload));
}

TEST(UdpTransportTest, IdleTimeoutDisconnects) {
  net::UdpConfig cfg;
  cfg.idle_timeout = SimDuration::millis(100);
  cfg.keepalive_interval = SimDuration(0);  // nobody refreshes the timer
  Loopback lo(cfg);
  if (!lo.ok()) GTEST_SKIP() << "no usable UDP sockets: " << lo.a->error();

  ASSERT_TRUE(lo.b->send(lo.b_local, lo.b_to_a, make_frame(5, 1, 8)));
  lo.b->flush_egress();
  std::vector<net::Delivery> got;
  for (int spins = 0; spins < 2000 && got.empty(); ++spins) {
    lo.a->pump(/*timeout_ms=*/5);
    got = lo.a->poll(lo.a_local);
  }
  ASSERT_EQ(got.size(), 1u);
  const net::EndpointId b_peer = got[0].from;
  EXPECT_TRUE(lo.a->connected(lo.a_local, b_peer));

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  lo.a->pump(/*timeout_ms=*/0);  // housekeeping notices the silence
  EXPECT_FALSE(lo.a->connected(lo.a_local, b_peer));
  EXPECT_EQ(lo.a->stats().idle_disconnects, 1u);

  for (auto& d : got) net::BufferPool::instance().release(std::move(d.frame.payload));
}

// -- FaultInjectingTransport (DESIGN.md §13): the seeded fault decorator --
// Deterministic checks run over a SimNetwork inner (no sockets needed);
// the layering checks at the bottom wrap real loopback sockets.

/// Two wrapper endpoints over a latency-0 sim link.
struct FaultRig {
  SimClock clock;
  net::SimNetwork inner{clock, 1};
  net::FaultInjectingTransport fi{inner, clock};
  net::EndpointId a = net::kInvalidEndpoint;
  net::EndpointId b = net::kInvalidEndpoint;

  FaultRig() {
    a = fi.create_endpoint("a");
    b = fi.create_endpoint("b");
    inner.connect(a, b, {SimDuration(0), 0.0, true});
  }

  std::size_t drain_b() {
    std::size_t n = 0;
    for (auto& d : fi.poll(b)) {
      ++n;
      net::BufferPool::instance().release(std::move(d.frame.payload));
    }
    return n;
  }
};

TEST(FaultTransportTest, LossLedgerCloses) {
  FaultRig rig;
  net::FaultPlan plan;
  plan.seed = 9;
  plan.all_links.loss = 0.5;
  rig.fi.set_fault_plan(plan);

  const std::size_t offered = 400;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < offered; ++i) {
    EXPECT_TRUE(rig.fi.send(rig.a, rig.b, make_frame(7, static_cast<std::uint32_t>(i + 1), 32)));
    if ((i + 1) % 10 == 0) {
      rig.fi.flush_egress();
      delivered += rig.drain_b();
    }
  }
  rig.fi.flush_egress();
  delivered += rig.drain_b();

  const net::FaultStats* fs = rig.fi.fault_stats_if_any(rig.b);
  ASSERT_NE(fs, nullptr);
  EXPECT_GT(fs->dropped.frames, 0u);
  EXPECT_EQ(fs->dropped.loss, fs->dropped.frames);  // only loss configured
  // Conservation: every offered frame is delivered or accounted dropped,
  // and the inner transport never saw the dropped ones.
  EXPECT_EQ(delivered + fs->dropped.frames, offered);
  EXPECT_EQ(rig.fi.frames_offered(), offered);
  EXPECT_EQ(rig.fi.frames_held(), 0u);
  EXPECT_EQ(rig.inner.egress_frames(rig.a), delivered);
}

TEST(FaultTransportTest, ReorderHoldbackReleasesOnFlush) {
  FaultRig rig;
  net::FaultPlan plan;
  plan.seed = 3;
  plan.all_links.reorder = 1.0;
  plan.all_links.reorder_extra = SimDuration::millis(100);
  rig.fi.set_fault_plan(plan);

  for (std::uint32_t i = 1; i <= 3; ++i) {
    EXPECT_TRUE(rig.fi.send(rig.a, rig.b, make_frame(7, i, 16)));
  }
  rig.fi.flush_egress();
  const std::size_t early = rig.drain_b();  // only holdbacks that drew 0 extra
  EXPECT_EQ(early + rig.fi.frames_held(), 3u);

  // Nothing more is released while the frames' detours are still pending...
  const std::size_t held_before = rig.fi.frames_held();
  rig.fi.poll(rig.b);
  EXPECT_EQ(rig.fi.frames_held(), held_before);

  // ...but every holdback is due once the clock passes the extra-delay cap.
  rig.clock.advance(SimDuration::millis(101));
  rig.fi.flush_egress();
  EXPECT_EQ(early + rig.drain_b(), 3u);
  EXPECT_EQ(rig.fi.frames_held(), 0u);
  EXPECT_EQ(rig.fi.fault_stats_if_any(rig.b)->reordered, 3u);
}

TEST(FaultTransportTest, DuplicatesReachTheInnerWireTwice) {
  FaultRig rig;
  net::FaultPlan plan;
  plan.seed = 5;
  plan.all_links.duplicate = 1.0;
  rig.fi.set_fault_plan(plan);

  for (std::uint32_t i = 1; i <= 10; ++i) {
    EXPECT_TRUE(rig.fi.send(rig.a, rig.b, make_frame(4, i, 24)));
  }
  rig.fi.flush_egress();
  EXPECT_EQ(rig.drain_b(), 20u);
  EXPECT_EQ(rig.fi.fault_stats_if_any(rig.b)->duplicated, 10u);
  EXPECT_EQ(rig.inner.egress_frames(rig.a), 20u);
}

TEST(FaultTransportTest, SendFailuresAreSilentButMeasured) {
  FaultRig rig;
  net::FaultPlan plan;
  plan.seed = 11;
  plan.all_links.send_fail = 1.0;
  rig.fi.set_fault_plan(plan);

  for (std::uint32_t i = 1; i <= 5; ++i) {
    // A sender-edge EAGAIN: send() reports success (real socket failures
    // surface at flush time, not send time) and the frame simply vanishes.
    EXPECT_TRUE(rig.fi.send(rig.a, rig.b, make_frame(2, i, 64)));
  }
  rig.fi.flush_egress();
  EXPECT_EQ(rig.drain_b(), 0u);
  EXPECT_EQ(rig.inner.egress_frames(rig.a), 0u);

  const net::SendPressure sp = rig.fi.send_pressure(net::kInvalidEndpoint);
  EXPECT_EQ(sp.send_failures, 5u);
  EXPECT_GT(sp.congested_bytes, 0u);
  EXPECT_GT(sp.congested_frames, 0u);
  // The congestion estimate decays as flushes pass without new failures.
  const std::uint64_t before = sp.congested_bytes;
  rig.fi.flush_egress();
  EXPECT_LT(rig.fi.send_pressure(net::kInvalidEndpoint).congested_bytes, before);
  // Backlog capability: the wrapper surfaces its own pressure even though
  // the sim inner reports pending bytes too.
  EXPECT_TRUE(rig.fi.has_backlog_signal());
  EXPECT_GE(rig.fi.pending_bytes(rig.b), rig.fi.send_pressure(rig.b).congested_bytes);
}

TEST(FaultTransportTest, CrashWindowRefusesSendsUntilRestart) {
  FaultRig rig;
  net::FaultPlan plan;
  plan.seed = 1;
  plan.events.push_back({SimTime::zero() + SimDuration::millis(100),
                         net::FaultEvent::Kind::Crash, rig.b, net::kInvalidEndpoint});
  plan.events.push_back({SimTime::zero() + SimDuration::millis(200),
                         net::FaultEvent::Kind::Restart, rig.b, net::kInvalidEndpoint});
  rig.fi.set_fault_plan(plan);

  rig.clock.advance(SimDuration::millis(50));
  EXPECT_TRUE(rig.fi.send(rig.a, rig.b, make_frame(7, 1, 16)));  // before the window
  rig.clock.advance(SimDuration::millis(100));                   // t=150: b is down
  EXPECT_FALSE(rig.fi.send(rig.a, rig.b, make_frame(7, 2, 16)));
  rig.clock.advance(SimDuration::millis(100));                   // t=250: restarted
  EXPECT_TRUE(rig.fi.send(rig.a, rig.b, make_frame(7, 3, 16)));
  rig.fi.flush_egress();

  EXPECT_EQ(rig.drain_b(), 2u);
  EXPECT_EQ(rig.fi.fault_stats_if_any(rig.b)->refused, 1u);
}

TEST(FaultTransportTest, SameSeedSameDecisionsDifferentSeedDiverges) {
  net::FaultPlan plan;
  plan.seed = 42;
  plan.all_links.loss = 0.2;
  plan.all_links.duplicate = 0.1;
  plan.all_links.corrupt = 0.1;
  plan.all_links.reorder = 0.2;
  plan.all_links.send_fail = 0.1;

  const auto run = [&](std::uint64_t seed) {
    FaultRig rig;
    net::FaultPlan p = plan;
    p.seed = seed;
    rig.fi.set_fault_plan(p);
    for (std::uint32_t i = 1; i <= 300; ++i) {
      rig.fi.send(rig.a, rig.b, make_frame(static_cast<std::uint8_t>(1 + i % 20), i, 32));
      if (i % 16 == 0) {
        rig.fi.flush_egress();
        rig.clock.advance(SimDuration::millis(5));
        rig.drain_b();
      }
    }
    rig.clock.advance(SimDuration::seconds(1));
    rig.fi.flush_egress();
    rig.drain_b();
    return rig.fi.decision_hash();
  };

  const std::uint64_t h1 = run(42), h2 = run(42), h3 = run(43);
  EXPECT_EQ(h1, h2) << "same plan seed must replay identical fault decisions";
  EXPECT_NE(h1, h3) << "a different plan seed must diverge";
}

// -- wrapper over real sockets (skipped where the environment forbids) --

TEST(FaultTransportTest, LoopbackChaosLedgerCloses) {
  Loopback lo;
  if (!lo.ok()) GTEST_SKIP() << "no usable UDP sockets: " << lo.a->error();

  net::FaultInjectingTransport fb(*lo.b, lo.clock);
  net::FaultPlan plan;
  plan.seed = 17;
  plan.all_links.loss = 0.3;
  plan.all_links.duplicate = 0.1;
  plan.all_links.reorder = 0.2;
  plan.all_links.reorder_extra = SimDuration::millis(20);
  fb.set_fault_plan(plan);

  const std::size_t offered = 300;
  std::size_t received = 0;
  for (std::size_t i = 0; i < offered; ++i) {
    ASSERT_TRUE(fb.send(lo.b_local, lo.b_to_a, make_frame(5, static_cast<std::uint32_t>(i + 1), 32)));
    if ((i + 1) % 20 == 0) {
      fb.flush_egress();
      lo.clock.advance(SimDuration::millis(25));
      lo.a->pump(/*timeout_ms=*/2);
      for (auto& d : lo.a->poll(lo.a_local)) {
        ++received;
        net::BufferPool::instance().release(std::move(d.frame.payload));
      }
    }
  }
  lo.clock.advance(SimDuration::seconds(1));  // every holdback comes due
  fb.flush_egress();
  for (int spins = 0; spins < 1000; ++spins) {
    lo.a->pump(/*timeout_ms=*/2);
    bool got = false;
    for (auto& d : lo.a->poll(lo.a_local)) {
      ++received;
      got = true;
      net::BufferPool::instance().release(std::move(d.frame.payload));
    }
    const net::FaultStats* fs = fb.fault_stats_if_any(lo.b_to_a);
    if (!got && received == offered - fs->dropped.frames + fs->duplicated) break;
  }

  const net::FaultStats* fs = fb.fault_stats_if_any(lo.b_to_a);
  EXPECT_GT(fs->dropped.frames, 0u);
  EXPECT_GT(fs->duplicated, 0u);
  EXPECT_EQ(fb.frames_held(), 0u);
  // Ledger across the real wire: everything offered either arrived, was
  // dropped by the wrapper, or was duplicated into an extra arrival.
  EXPECT_EQ(received, offered - fs->dropped.frames + fs->duplicated);
  // The inner socket never saw wrapper-dropped frames.
  EXPECT_EQ(lo.b->egress_frames(lo.b_local),
            offered - fs->dropped.frames + fs->duplicated);
}

TEST(FaultTransportTest, KeepalivesOutliveTotalAppLoss) {
  net::UdpConfig cfg;
  cfg.idle_timeout = SimDuration::millis(400);
  cfg.keepalive_interval = SimDuration::millis(50);
  Loopback lo(cfg);
  if (!lo.ok()) GTEST_SKIP() << "no usable UDP sockets: " << lo.a->error();

  net::FaultInjectingTransport fb(*lo.b, lo.clock);
  ASSERT_TRUE(fb.send(lo.b_local, lo.b_to_a, make_frame(5, 1, 16)));
  fb.flush_egress();
  std::vector<net::Delivery> got;
  for (int spins = 0; spins < 2000 && got.empty(); ++spins) {
    lo.a->pump(/*timeout_ms=*/5);
    got = lo.a->poll(lo.a_local);
  }
  ASSERT_EQ(got.size(), 1u);
  const net::EndpointId b_peer = got[0].from;
  for (auto& d : got) net::BufferPool::instance().release(std::move(d.frame.payload));

  // From here on the wrapper eats EVERY application frame — but keepalives
  // are the inner transport's own machinery, beneath the fault layer, so
  // the session must stay alive through the blackout.
  net::FaultPlan plan;
  plan.seed = 1;
  plan.all_links.loss = 1.0;
  fb.set_fault_plan(plan);

  const std::uint64_t frames_before = lo.a->ingress_frames(lo.a_local);
  const auto start = std::chrono::steady_clock::now();
  std::uint32_t seq = 2;
  // Run well past the idle timeout: without keepalives this silence would
  // disconnect the peer (cf. IdleTimeoutDisconnects above).
  while (std::chrono::steady_clock::now() - start < std::chrono::milliseconds(700)) {
    fb.send(lo.b_local, lo.b_to_a, make_frame(6, seq++, 16));
    fb.flush_egress();
    lo.b->pump(/*timeout_ms=*/2);
    lo.a->pump(/*timeout_ms=*/3);
    lo.a->poll(lo.a_local);
  }
  EXPECT_TRUE(lo.a->connected(lo.a_local, b_peer))
      << "idle timeout fired despite keepalives under total app-frame loss";
  EXPECT_EQ(lo.a->stats().idle_disconnects, 0u);
  EXPECT_EQ(lo.a->ingress_frames(lo.a_local), frames_before);
  EXPECT_GT(lo.a->stats().keepalives_received, 0u);
}

TEST(FaultTransportTest, ReassemblySurvivesWrapperChaos) {
  Loopback lo;
  if (!lo.ok()) GTEST_SKIP() << "no usable UDP sockets: " << lo.a->error();

  net::FaultInjectingTransport fb(*lo.b, lo.clock);
  net::FaultPlan plan;
  plan.seed = 23;
  plan.all_links.loss = 0.2;
  plan.all_links.reorder = 0.5;
  plan.all_links.reorder_extra = SimDuration::millis(10);
  fb.set_fault_plan(plan);

  // Every frame is over-MTU: each surviving one must fragment and reassemble
  // cleanly even though whole frames around it vanish or arrive late.
  const std::size_t offered = 40;
  const std::size_t payload = 3000;
  std::size_t received = 0, intact = 0;
  const auto collect = [&] {
    for (auto& d : lo.a->poll(lo.a_local)) {
      ++received;
      const Frame want = make_frame(9, d.frame.seq, payload);
      if (d.frame.payload == want.payload) ++intact;
      net::BufferPool::instance().release(std::move(d.frame.payload));
    }
  };
  for (std::size_t i = 0; i < offered; ++i) {
    ASSERT_TRUE(fb.send(lo.b_local, lo.b_to_a, make_frame(9, static_cast<std::uint32_t>(i + 1), payload)));
    if ((i + 1) % 5 == 0) {
      fb.flush_egress();
      lo.clock.advance(SimDuration::millis(12));
      lo.a->pump(/*timeout_ms=*/2);
      collect();
    }
  }
  lo.clock.advance(SimDuration::seconds(1));
  fb.flush_egress();
  const net::FaultStats* fs = fb.fault_stats_if_any(lo.b_to_a);
  for (int spins = 0; spins < 2000 && received < offered - fs->dropped.frames; ++spins) {
    lo.a->pump(/*timeout_ms=*/5);
    collect();
  }

  EXPECT_EQ(received, offered - fs->dropped.frames);
  EXPECT_EQ(intact, received) << "a reassembled frame came back corrupted";
  EXPECT_GE(lo.a->stats().frames_reassembled, received);
}

}  // namespace
}  // namespace dyconits
