// Transport-layer tests (DESIGN.md §12): the pure UDP datagram codec
// (framing, fragmentation, reassembly), damaged-datagram handling feeding
// the application's sequence-gap detection, and real-socket smoke tests for
// UdpTransport (skipped where sockets are unavailable).
#include <gtest/gtest.h>

#include <thread>

#include "bots/bot.h"
#include "net/buffer_pool.h"
#include "net/sim_network.h"
#include "net/udp_framing.h"
#include "net/udp_transport.h"
#include "protocol/codec.h"
#include "world/world.h"

namespace dyconits {
namespace {

using net::Frame;
using namespace net::udpwire;

Frame make_frame(std::uint8_t tag, std::uint32_t seq, std::size_t payload_len) {
  Frame f;
  f.tag = tag;
  f.seq = seq;
  f.payload.resize(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i) {
    f.payload[i] = static_cast<std::uint8_t>((i * 31 + tag) & 0xFF);
  }
  return f;
}

TEST(UdpFramingTest, AppendParseRoundTrip) {
  std::vector<Frame> in;
  in.push_back(make_frame(3, 0, 0));        // unsequenced, empty
  in.push_back(make_frame(7, 1, 5));
  in.push_back(make_frame(11, 0xFFFFFFFF, 300));  // max seq, multi-byte varints

  std::vector<std::uint8_t> body;
  std::size_t expected = 0;
  for (const auto& f : in) {
    append_frame(body, f);
    expected += f.wire_size();
  }
  EXPECT_EQ(body.size(), expected);  // append_frame is exactly wire_size()

  std::vector<Frame> out;
  ASSERT_TRUE(parse_frames(body.data(), body.size(), out));
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].tag, in[i].tag);
    EXPECT_EQ(out[i].seq, in[i].seq);
    EXPECT_EQ(out[i].payload, in[i].payload);
  }
}

TEST(UdpFramingTest, TruncatedBodyKeepsPrefixAndFails) {
  std::vector<std::uint8_t> body;
  const Frame a = make_frame(2, 1, 40);
  const Frame b = make_frame(2, 2, 40);
  append_frame(body, a);
  append_frame(body, b);
  body.resize(body.size() - 10);  // tear the tail off frame b

  std::vector<Frame> out;
  EXPECT_FALSE(parse_frames(body.data(), body.size(), out));
  ASSERT_EQ(out.size(), 1u);  // the undamaged prefix survives
  EXPECT_EQ(out[0].payload, a.payload);
}

TEST(UdpFramingTest, FragmentationRoundTripAtMtuEdges) {
  const std::size_t mtu = 256;
  // wire_size + 1 (kind byte) one over the MTU: the smallest frame that
  // must fragment — and well past it. MTU-1 exact fits stay inline and are
  // covered by the loopback smoke test.
  for (const std::size_t over : {std::size_t{1}, std::size_t{2}, std::size_t{2000}}) {
    const std::size_t payload = mtu - 1 + over;  // header ~7 bytes, all > mtu
    const Frame f = make_frame(14, 1234567, payload);
    ASSERT_GT(f.wire_size() + 1, mtu);

    const auto datagrams = fragment_frame(f, mtu, /*msg_id=*/42);
    ASSERT_GT(datagrams.size(), 1u);
    for (const auto& d : datagrams) {
      EXPECT_LE(d.size(), mtu);
      ASSERT_GE(d.size(), 2u);
      EXPECT_EQ(d[0], static_cast<std::uint8_t>(DatagramKind::Fragment));
    }

    Reassembler r;
    std::optional<Frame> got;
    for (const auto& d : datagrams) {
      ASSERT_FALSE(got.has_value());  // only the last fragment completes
      got = r.feed(d.data() + 1, d.size() - 1, SimTime::zero());
    }
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->tag, f.tag);
    EXPECT_EQ(got->seq, f.seq);
    EXPECT_EQ(got->payload, f.payload);
    EXPECT_EQ(r.partial_count(), 0u);
    net::BufferPool::instance().release(std::move(got->payload));
  }
}

TEST(UdpFramingTest, ReorderedAndDuplicatedFragments) {
  const Frame f = make_frame(14, 7, 1000);
  const auto datagrams = fragment_frame(f, 256, /*msg_id=*/9);
  ASSERT_GE(datagrams.size(), 3u);

  Reassembler r;
  // Deliver in reverse, duplicating the middle fragment.
  std::optional<Frame> got;
  for (std::size_t i = datagrams.size(); i-- > 0;) {
    got = r.feed(datagrams[i].data() + 1, datagrams[i].size() - 1, SimTime::zero());
    if (i == 1) {
      auto dup = r.feed(datagrams[i].data() + 1, datagrams[i].size() - 1, SimTime::zero());
      EXPECT_FALSE(dup.has_value());
    }
  }
  ASSERT_TRUE(got.has_value());  // reverse order still completes on the last piece
  EXPECT_EQ(got->payload, f.payload);
  EXPECT_EQ(r.stats().duplicate_fragments, 1u);
  EXPECT_EQ(r.stats().completed, 1u);
  net::BufferPool::instance().release(std::move(got->payload));

  // Garbage header: counted, not crashed.
  const std::uint8_t junk[3] = {0xFF, 0xFF, 0xFF};
  EXPECT_FALSE(r.feed(junk, sizeof(junk), SimTime::zero()).has_value());
  EXPECT_EQ(r.stats().malformed, 1u);
}

TEST(UdpFramingTest, StalePartialsAreGarbageCollected) {
  const Frame f = make_frame(14, 7, 1000);
  const auto datagrams = fragment_frame(f, 256, /*msg_id=*/3);
  ASSERT_GE(datagrams.size(), 2u);

  Reassembler r(SimDuration::seconds(5));
  EXPECT_FALSE(r.feed(datagrams[0].data() + 1, datagrams[0].size() - 1, SimTime::zero()));
  EXPECT_EQ(r.partial_count(), 1u);
  r.gc(SimTime::zero() + SimDuration::seconds(4));
  EXPECT_EQ(r.partial_count(), 1u);  // within the window: kept
  r.gc(SimTime::zero() + SimDuration::seconds(6));
  EXPECT_EQ(r.partial_count(), 0u);  // a lost fragment surfaces as a seq gap
  EXPECT_EQ(r.stats().stale_dropped, 1u);
}

// Lost and duplicated datagrams manifest to the application as holes and
// repeats in the frame sequence; the bot's gap detector must classify them.
TEST(TransportGapTest, DamagedStreamsFeedGapDetection) {
  SimClock clock;
  net::SimNetwork net(clock, 1);
  world::World world;
  const net::EndpointId server = net.create_endpoint("server");
  bots::BotClient bot(clock, net, world, server, "bot", 1, {});
  net.connect(bot.endpoint(), server, {SimDuration(0), 0.0, true});

  const auto push = [&](std::uint32_t seq) {
    Frame f = protocol::encode(protocol::KeepAlive{seq});
    f.seq = seq;
    net.send(server, bot.endpoint(), std::move(f));
  };

  push(1);
  bot.poll_inbound();
  EXPECT_EQ(bot.gaps_detected(), 0u);

  push(3);  // a dropped datagram: seq 2 never arrives
  bot.poll_inbound();
  EXPECT_EQ(bot.gaps_detected(), 1u);

  push(3);  // a duplicated datagram replays an already-seen frame
  bot.poll_inbound();
  EXPECT_EQ(bot.dup_or_old_frames(), 1u);

  push(2);  // late arrival: the hole was reorder after all
  push(4);
  bot.poll_inbound();
  EXPECT_EQ(bot.gaps_detected(), 1u);  // unchanged; hole filled within grace
  EXPECT_EQ(bot.resyncs_requested(), 0u);
}

// -- real sockets below; skip where the environment forbids them --

struct Loopback {
  SimClock clock;
  std::unique_ptr<net::UdpTransport> a, b;
  net::EndpointId a_local = net::kInvalidEndpoint;
  net::EndpointId b_local = net::kInvalidEndpoint;
  net::EndpointId b_to_a = net::kInvalidEndpoint;

  explicit Loopback(net::UdpConfig base = {}) {
    base.bind_host = "127.0.0.1";
    base.bind_port = 0;
    a = std::make_unique<net::UdpTransport>(clock, base);
    b = std::make_unique<net::UdpTransport>(clock, base);
    if (!a->valid() || !b->valid()) return;
    a_local = a->create_endpoint("alpha");
    b_local = b->create_endpoint("beta");
    b_to_a = b->add_peer("127.0.0.1", a->local_port(), "alpha");
  }
  bool ok() const { return a && a->valid() && b && b->valid(); }
};

TEST(UdpTransportTest, LoopbackEchoSmoke) {
  Loopback lo;
  if (!lo.ok()) GTEST_SKIP() << "no usable UDP sockets: " << lo.a->error();

  // One coalescable frame and one that must fragment (64 KiB >> MTU).
  const Frame small = make_frame(5, 1, 32);
  const Frame big = make_frame(11, 2, 64 * 1024);
  ASSERT_TRUE(lo.b->send(lo.b_local, lo.b_to_a, small));
  ASSERT_TRUE(lo.b->send(lo.b_local, lo.b_to_a, big));
  lo.b->flush_egress();

  std::vector<net::Delivery> got;
  for (int spins = 0; spins < 2000 && got.size() < 2; ++spins) {
    lo.a->pump(/*timeout_ms=*/5);
    for (auto& d : lo.a->poll(lo.a_local)) got.push_back(std::move(d));
  }
  ASSERT_EQ(got.size(), 2u) << "frames lost on loopback";
  EXPECT_EQ(got[0].frame.payload, small.payload);
  EXPECT_EQ(got[1].frame.payload, big.payload);
  EXPECT_EQ(got[1].frame.seq, 2u);
  EXPECT_GE(lo.a->stats().frames_reassembled, 1u);

  // The sender was auto-registered from its source address; echo back.
  const net::EndpointId b_peer = got[0].from;
  EXPECT_TRUE(lo.a->connected(lo.a_local, b_peer));
  ASSERT_TRUE(lo.a->send(lo.a_local, b_peer, make_frame(6, 1, 8)));
  lo.a->flush_egress();
  std::vector<net::Delivery> back;
  for (int spins = 0; spins < 2000 && back.empty(); ++spins) {
    lo.b->pump(/*timeout_ms=*/5);
    back = lo.b->poll(lo.b_local);
  }
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].frame.tag, 6);

  // Modeled frame accounting matches the sim's semantics on both ends.
  EXPECT_EQ(lo.b->egress_frames(lo.b_local), 2u);
  EXPECT_EQ(lo.a->ingress_frames(lo.a_local), 2u);
  EXPECT_EQ(lo.a->egress_bytes(lo.a_local), lo.b->ingress_bytes(lo.b_local));

  for (auto& d : got) net::BufferPool::instance().release(std::move(d.frame.payload));
  for (auto& d : back) net::BufferPool::instance().release(std::move(d.frame.payload));
}

TEST(UdpTransportTest, IdleTimeoutDisconnects) {
  net::UdpConfig cfg;
  cfg.idle_timeout = SimDuration::millis(100);
  cfg.keepalive_interval = SimDuration(0);  // nobody refreshes the timer
  Loopback lo(cfg);
  if (!lo.ok()) GTEST_SKIP() << "no usable UDP sockets: " << lo.a->error();

  ASSERT_TRUE(lo.b->send(lo.b_local, lo.b_to_a, make_frame(5, 1, 8)));
  lo.b->flush_egress();
  std::vector<net::Delivery> got;
  for (int spins = 0; spins < 2000 && got.empty(); ++spins) {
    lo.a->pump(/*timeout_ms=*/5);
    got = lo.a->poll(lo.a_local);
  }
  ASSERT_EQ(got.size(), 1u);
  const net::EndpointId b_peer = got[0].from;
  EXPECT_TRUE(lo.a->connected(lo.a_local, b_peer));

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  lo.a->pump(/*timeout_ms=*/0);  // housekeeping notices the silence
  EXPECT_FALSE(lo.a->connected(lo.a_local, b_peer));
  EXPECT_EQ(lo.a->stats().idle_disconnects, 1u);

  for (auto& d : got) net::BufferPool::instance().release(std::move(d.frame.payload));
}

}  // namespace
}  // namespace dyconits
