// Unit tests for src/util: simulated time, RNG, statistics, flags.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "util/flags.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/stats.h"

namespace dyconits {
namespace {

// ---------------------------------------------------------------- SimTime

TEST(SimTimeTest, DurationConstructors) {
  EXPECT_EQ(SimDuration::millis(3).count_micros(), 3000);
  EXPECT_EQ(SimDuration::seconds(2).count_micros(), 2000000);
  EXPECT_EQ(SimDuration::micros(7).count_micros(), 7);
  EXPECT_EQ(SimDuration::millis(1500).count_millis(), 1500);
  EXPECT_DOUBLE_EQ(SimDuration::millis(500).as_seconds(), 0.5);
}

TEST(SimTimeTest, DurationArithmetic) {
  const SimDuration a = SimDuration::millis(30);
  const SimDuration b = SimDuration::millis(20);
  EXPECT_EQ((a + b).count_millis(), 50);
  EXPECT_EQ((a - b).count_millis(), 10);
  EXPECT_EQ((a * 3).count_millis(), 90);
  EXPECT_EQ((a / 2).count_millis(), 15);
  SimDuration c = a;
  c += b;
  EXPECT_EQ(c.count_millis(), 50);
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(SimTimeTest, DurationComparison) {
  EXPECT_LT(SimDuration::millis(1), SimDuration::millis(2));
  EXPECT_GE(SimDuration::infinite(), SimDuration::seconds(1000000));
}

TEST(SimTimeTest, TimePointArithmetic) {
  SimTime t = SimTime::zero();
  t += SimDuration::millis(50);
  EXPECT_EQ(t.count_micros(), 50000);
  const SimTime later = t + SimDuration::seconds(1);
  EXPECT_EQ((later - t).count_millis(), 1000);
  EXPECT_GT(later, t);
}

TEST(SimTimeTest, ClockAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.now(), SimTime::zero());
  clock.advance(SimDuration::millis(50));
  EXPECT_EQ(clock.now().count_micros(), 50000);
  clock.advance_to(SimTime(40000));  // backwards: no-op
  EXPECT_EQ(clock.now().count_micros(), 50000);
  clock.advance_to(SimTime(70000));
  EXPECT_EQ(clock.now().count_micros(), 70000);
}

TEST(SimTimeTest, InfiniteDoesNotOverflowWhenAdded) {
  const SimTime far = SimTime::zero() + SimDuration::infinite();
  EXPECT_GT(far + SimDuration::seconds(100000), far);  // no wraparound
}

// -------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(RngTest, ZeroSeedIsUsable) {
  Rng r(0);
  EXPECT_NE(r.next_u64(), 0u);  // splitmix rescues the all-zero state
}

TEST(RngTest, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(RngTest, NextInInclusiveRange) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DoubleMeanIsCentered) {
  Rng r(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(RngTest, ChanceProportion) {
  Rng r(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng r(23);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(r.next_gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.05);
  EXPECT_NEAR(s.stddev(), 1.0, 0.05);
}

TEST(RngTest, ZipfFavorsLowRanks) {
  Rng r(29);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[r.next_zipf(5, 1.2)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[3]);
  for (const auto& [k, v] : counts) EXPECT_LT(k, 5u);
}

TEST(RngTest, ZipfDegenerateSupport) {
  Rng r(31);
  EXPECT_EQ(r.next_zipf(0, 1.0), 0u);
  EXPECT_EQ(r.next_zipf(1, 1.0), 0u);
}

TEST(RngTest, SplitStreamsAreIndependentlyDeterministic) {
  Rng a(41);
  Rng child1 = a.split();
  Rng b(41);
  Rng child2 = b.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

// ----------------------------------------------------------- RunningStats

TEST(RunningStatsTest, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownValues) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombined) {
  Rng r(43);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = r.next_gaussian() * 3 + 1;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

// ---------------------------------------------------------------- Samples

TEST(SamplesTest, PercentilesOnKnownData) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.0, 1.0);
  EXPECT_NEAR(s.percentile(0.95), 95.0, 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SamplesTest, EmptyReturnsZero) {
  Samples s;
  EXPECT_EQ(s.percentile(0.5), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(SamplesTest, AddAfterQueryResorts) {
  Samples s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.add(1.0);  // added out of order after a sort
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
}

TEST(SamplesTest, ClampOutOfRangeQuantile) {
  Samples s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(2.0), 2.0);
}

// ------------------------------------------------------------ LogHistogram

TEST(LogHistogramTest, PercentileUpperBounds) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.add(3.0);  // bucket [2,4)
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 4.0);
}

TEST(LogHistogramTest, SmallValuesLandInFirstBucket) {
  LogHistogram h;
  h.add(0.1);
  h.add(0.9);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1.0);
}

TEST(LogHistogramTest, EmptyReturnsFirstBucketEdge) {
  // An empty histogram reports bucket 0's upper edge — the same value a
  // histogram full of sub-1.0 samples reports — so downstream tables never
  // see a 0.0 that no bucket could produce. Callers distinguish the two
  // cases via count().
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1.0);
}

TEST(LogHistogramTest, SingleBucketAllQuantilesAgree) {
  LogHistogram h;
  h.add(5.0);  // bucket [4,8)
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), 8.0) << "q=" << q;
  }
}

TEST(LogHistogramTest, MixedDistribution) {
  LogHistogram h;
  for (int i = 0; i < 90; ++i) h.add(2.0);
  for (int i = 0; i < 10; ++i) h.add(1000.0);
  EXPECT_LE(h.percentile(0.5), 4.0);
  EXPECT_GE(h.percentile(0.99), 1024.0);
}

// ------------------------------------------------------------------ Flags

TEST(FlagsTest, ParsesKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--players=50", "--policy=aoi", "--verbose", "pos1"};
  Flags f(5, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("players", 0), 50);
  EXPECT_EQ(f.get_string("policy", ""), "aoi");
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_FALSE(f.has("absent"));
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos1");
}

TEST(FlagsTest, Defaults) {
  const char* argv[] = {"prog"};
  Flags f(1, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_EQ(f.get_double("x", 2.5), 2.5);
  EXPECT_FALSE(f.get_bool("b", false));
  EXPECT_TRUE(f.get_bool("b", true));
}

TEST(FlagsTest, IntList) {
  const char* argv[] = {"prog", "--players=25,50,100"};
  Flags f(2, const_cast<char**>(argv));
  const auto v = f.get_int_list("players", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 25);
  EXPECT_EQ(v[2], 100);
  const auto d = f.get_int_list("absent", {1, 2});
  EXPECT_EQ(d.size(), 2u);
}

TEST(FlagsTest, BoolSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=1", "--c=yes", "--d=false"};
  Flags f(5, const_cast<char**>(argv));
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_TRUE(f.get_bool("b", false));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

TEST(FlagsTest, UnknownKeysFindsMisspellings) {
  const char* argv[] = {"prog", "--player=100", "--duration=30"};
  Flags f(3, const_cast<char**>(argv));
  const auto unknown = f.unknown_keys({"players", "duration"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "player");
  EXPECT_TRUE(f.unknown_keys({"player", "duration"}).empty());
}

TEST(FlagsTest, UnknownKeysWildcardPrefix) {
  const char* argv[] = {"prog", "--benchmark_filter=BM_Flush", "--benchmark=x"};
  Flags f(3, const_cast<char**>(argv));
  // "benchmark_*" matches by prefix; bare "benchmark" lacks the underscore.
  const auto unknown = f.unknown_keys({"benchmark_*"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "benchmark");
}

TEST(FlagsDeathTest, AssertKnownRejectsMisspelledFlag) {
  const char* argv[] = {"prog", "--player=100"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_EXIT(f.assert_known({"players"}), testing::ExitedWithCode(2),
              "unknown flag --player");
}

TEST(FlagsTest, AssertKnownAcceptsFullVocabulary) {
  const char* argv[] = {"prog", "--players=5", "--trace=out.json"};
  Flags f(3, const_cast<char**>(argv));
  f.assert_known({"players", "trace"});  // must not exit
}

// -------------------------------------------- endpoint / duration parsing

TEST(FlagsTest, ParseEndpoint) {
  const auto ep = parse_endpoint("127.0.0.1:4600");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->host, "127.0.0.1");
  EXPECT_EQ(ep->port, 4600);

  EXPECT_FALSE(parse_endpoint("").has_value());
  EXPECT_FALSE(parse_endpoint("localhost").has_value());     // no port
  EXPECT_FALSE(parse_endpoint(":4600").has_value());         // empty host
  EXPECT_FALSE(parse_endpoint("host:").has_value());         // empty port
  EXPECT_FALSE(parse_endpoint("host:0").has_value());        // port range
  EXPECT_FALSE(parse_endpoint("host:65536").has_value());
  EXPECT_FALSE(parse_endpoint("host:12ab").has_value());     // trailing junk
  EXPECT_FALSE(parse_endpoint("host:-1").has_value());
}

TEST(FlagsTest, ParseDuration) {
  EXPECT_EQ(parse_duration("500ms"), SimDuration::millis(500));
  EXPECT_EQ(parse_duration("5s"), SimDuration::seconds(5));
  EXPECT_EQ(parse_duration("250us"), SimDuration::micros(250));
  EXPECT_EQ(parse_duration("2m"), SimDuration::seconds(120));
  EXPECT_EQ(parse_duration("0s"), SimDuration(0));

  EXPECT_FALSE(parse_duration("").has_value());
  EXPECT_FALSE(parse_duration("500").has_value());    // unit required
  EXPECT_FALSE(parse_duration("ms").has_value());     // value required
  EXPECT_FALSE(parse_duration("5h").has_value());     // unknown unit
  EXPECT_FALSE(parse_duration("-5s").has_value());    // negative
  EXPECT_FALSE(parse_duration("5 s").has_value());    // embedded space
}

TEST(FlagsTest, GetEndpointAndDurationDefaults) {
  const char* argv[] = {"prog", "--listen=10.0.0.2:9000", "--net-timeout=750ms"};
  Flags f(3, const_cast<char**>(argv));
  const Endpoint ep = f.get_endpoint("listen", {"127.0.0.1", 1});
  EXPECT_EQ(ep.host, "10.0.0.2");
  EXPECT_EQ(ep.port, 9000);
  EXPECT_EQ(f.get_duration("net-timeout", SimDuration(0)), SimDuration::millis(750));
  // Absent flags return the default untouched.
  EXPECT_EQ(f.get_endpoint("connect", {"h", 7}).port, 7);
  EXPECT_EQ(f.get_duration("idle", SimDuration::seconds(3)), SimDuration::seconds(3));
}

TEST(FlagsDeathTest, MalformedEndpointExits) {
  const char* argv[] = {"prog", "--listen=nonsense"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_EXIT(f.get_endpoint("listen", {"127.0.0.1", 1}), testing::ExitedWithCode(2),
              "expected host:port");
}

TEST(FlagsDeathTest, MalformedDurationExits) {
  const char* argv[] = {"prog", "--net-timeout=500"};
  Flags f(2, const_cast<char**>(argv));
  EXPECT_EXIT(f.get_duration("net-timeout", SimDuration(0)), testing::ExitedWithCode(2),
              "unit suffix");
}

}  // namespace
}  // namespace dyconits
