// Unit tests for src/world: geometry, chunks, terrain, world store.
#include <gtest/gtest.h>

#include "world/ascii_map.h"
#include "world/block.h"
#include "world/chunk.h"
#include "world/geometry.h"
#include "world/terrain.h"
#include "world/world.h"

namespace dyconits::world {
namespace {

// ---------------------------------------------------------------- geometry

TEST(GeometryTest, FloorDivModNegative) {
  EXPECT_EQ(floor_div(17, 16), 1);
  EXPECT_EQ(floor_div(-1, 16), -1);
  EXPECT_EQ(floor_div(-16, 16), -1);
  EXPECT_EQ(floor_div(-17, 16), -2);
  EXPECT_EQ(floor_mod(-1, 16), 15);
  EXPECT_EQ(floor_mod(-16, 16), 0);
  EXPECT_EQ(floor_mod(17, 16), 1);
}

TEST(GeometryTest, ChunkOfBlock) {
  EXPECT_EQ(ChunkPos::of_block({0, 0, 0}), (ChunkPos{0, 0}));
  EXPECT_EQ(ChunkPos::of_block({15, 0, 15}), (ChunkPos{0, 0}));
  EXPECT_EQ(ChunkPos::of_block({16, 0, 0}), (ChunkPos{1, 0}));
  EXPECT_EQ(ChunkPos::of_block({-1, 0, -1}), (ChunkPos{-1, -1}));
  EXPECT_EQ(ChunkPos::of_block({-16, 0, -17}), (ChunkPos{-1, -2}));
}

TEST(GeometryTest, ChunkOfVecMatchesBlock) {
  EXPECT_EQ(ChunkPos::of({-0.5, 10.0, 31.9}), ChunkPos::of_block({-1, 10, 31}));
}

TEST(GeometryTest, Chebyshev) {
  const ChunkPos a{0, 0};
  EXPECT_EQ(a.chebyshev({3, -4}), 4);
  EXPECT_EQ(a.chebyshev({0, 0}), 0);
  EXPECT_EQ((ChunkPos{-2, 5}).chebyshev({2, 5}), 4);
}

TEST(GeometryTest, KeyRoundtrip) {
  for (const ChunkPos p : {ChunkPos{0, 0}, ChunkPos{-1, 1}, ChunkPos{123456, -654321}}) {
    EXPECT_EQ(ChunkPos::from_key(p.key()), p);
  }
}

TEST(GeometryTest, Vec3Algebra) {
  const Vec3 a{1, 2, 3}, b{4, 6, 8};
  EXPECT_EQ((b - a), (Vec3{3, 4, 5}));
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).length(), 5.0);
  EXPECT_DOUBLE_EQ((Vec3{3, 100, 4}).horizontal_length(), 5.0);
  EXPECT_DOUBLE_EQ(distance(a, a), 0.0);
  const Vec3 n = Vec3{0, 0, 9}.normalized();
  EXPECT_DOUBLE_EQ(n.z, 1.0);
  EXPECT_EQ((Vec3{}.normalized()), (Vec3{}));
}

TEST(GeometryTest, BlockPosFromVecFloors) {
  EXPECT_EQ(BlockPos::from({-0.1, 2.9, 5.0}), (BlockPos{-1, 2, 5}));
}

// ------------------------------------------------------------------- block

TEST(BlockTest, Properties) {
  EXPECT_FALSE(is_solid(Block::Air));
  EXPECT_FALSE(is_solid(Block::Water));
  EXPECT_TRUE(is_solid(Block::Stone));
  EXPECT_TRUE(is_breakable(Block::Stone));
  EXPECT_FALSE(is_breakable(Block::Bedrock));
  EXPECT_FALSE(is_breakable(Block::Air));
  EXPECT_STREQ(block_name(Block::Grass), "grass");
}

// ------------------------------------------------------------------- chunk

TEST(ChunkTest, StartsEmpty) {
  Chunk c({0, 0});
  EXPECT_EQ(c.non_air_count(), 0u);
  EXPECT_EQ(c.get_local(5, 5, 5), Block::Air);
  EXPECT_EQ(c.height_at(5, 5), -1);
  EXPECT_EQ(c.revision(), 0u);
}

TEST(ChunkTest, SetGetAndCounts) {
  Chunk c({0, 0});
  c.set_local(1, 2, 3, Block::Stone);
  EXPECT_EQ(c.get_local(1, 2, 3), Block::Stone);
  EXPECT_EQ(c.non_air_count(), 1u);
  c.set_local(1, 2, 3, Block::Dirt);  // replace, count unchanged
  EXPECT_EQ(c.non_air_count(), 1u);
  c.set_local(1, 2, 3, Block::Air);
  EXPECT_EQ(c.non_air_count(), 0u);
}

TEST(ChunkTest, SettingSameBlockDoesNotBumpRevision) {
  Chunk c({0, 0});
  c.set_local(0, 0, 0, Block::Stone);
  const auto rev = c.revision();
  c.set_local(0, 0, 0, Block::Stone);
  EXPECT_EQ(c.revision(), rev);
}

TEST(ChunkTest, HeightmapTracksTopBlock) {
  Chunk c({0, 0});
  c.set_local(4, 10, 4, Block::Stone);
  c.set_local(4, 20, 4, Block::Stone);
  EXPECT_EQ(c.height_at(4, 4), 20);
  c.set_local(4, 20, 4, Block::Air);  // removing the top re-scans downward
  EXPECT_EQ(c.height_at(4, 4), 10);
  c.set_local(4, 10, 4, Block::Air);
  EXPECT_EQ(c.height_at(4, 4), -1);
}

TEST(ChunkTest, RleRoundtrip) {
  Chunk c({2, -3});
  c.set_local(0, 0, 0, Block::Bedrock);
  c.set_local(5, 30, 7, Block::Planks);
  c.set_local(15, 63, 15, Block::Leaves);
  const auto rle = c.encode_rle();

  Chunk d({2, -3});
  ASSERT_TRUE(d.decode_rle(rle.data(), rle.size()));
  for (int x = 0; x < kChunkSize; ++x) {
    for (int z = 0; z < kChunkSize; ++z) {
      for (int y = 0; y < kWorldHeight; ++y) {
        ASSERT_EQ(d.get_local(x, y, z), c.get_local(x, y, z));
      }
    }
  }
  EXPECT_EQ(d.non_air_count(), c.non_air_count());
  EXPECT_EQ(d.height_at(5, 7), c.height_at(5, 7));
}

TEST(ChunkTest, RleRejectsMalformed) {
  Chunk c({0, 0});
  const auto good = c.encode_rle();
  EXPECT_FALSE(c.decode_rle(good.data(), good.size() - 1));  // not multiple of 4
  std::vector<std::uint8_t> zero_run = {0, 0, 0, 0};          // run length 0
  EXPECT_FALSE(c.decode_rle(zero_run.data(), zero_run.size()));
  std::vector<std::uint8_t> short_total = {1, 0, 5, 0};       // covers 5 of 16384
  EXPECT_FALSE(c.decode_rle(short_total.data(), short_total.size()));
  std::vector<std::uint8_t> bad_id = {0xFF, 0xFF, 0xFF, 0xFF};  // unknown block id
  EXPECT_FALSE(c.decode_rle(bad_id.data(), bad_id.size()));
}

TEST(ChunkTest, RleIsCompact) {
  Chunk c({0, 0});
  // Uniform chunk: a handful of runs, tiny payload.
  EXPECT_LT(c.encode_rle().size(), 16u);
}

TEST(ChunkTest, RleCachePointerStableWithoutWrites) {
  Chunk c({4, 4});
  c.set_local(3, 10, 4, Block::Stone);
  const std::vector<std::uint8_t>* first = &c.encode_rle();
  // No intervening write: the cached blob is returned, not re-encoded.
  EXPECT_EQ(&c.encode_rle(), first);
  EXPECT_EQ(&c.encode_rle(), first);
}

TEST(ChunkTest, RleCacheInvalidatedByBlockWrite) {
  Chunk c({4, 4});
  c.set_local(3, 10, 4, Block::Stone);
  const std::vector<std::uint8_t> before = c.encode_rle();
  c.set_local(3, 11, 4, Block::Planks);
  const std::vector<std::uint8_t>& after = c.encode_rle();
  EXPECT_NE(before, after);

  // The fresh blob round-trips the current contents.
  Chunk d({4, 4});
  ASSERT_TRUE(d.decode_rle(after.data(), after.size()));
  EXPECT_EQ(d.get_local(3, 11, 4), Block::Planks);
  EXPECT_EQ(d.get_local(3, 10, 4), Block::Stone);
}

TEST(ChunkTest, RleCacheInvalidatedByDecode) {
  Chunk src({0, 0});
  src.set_local(0, 5, 0, Block::Cobblestone);
  const std::vector<std::uint8_t> blob = src.encode_rle();

  Chunk c({0, 0});
  const std::vector<std::uint8_t> empty_blob = c.encode_rle();  // warm the cache
  ASSERT_TRUE(c.decode_rle(blob.data(), blob.size()));
  EXPECT_EQ(c.encode_rle(), blob);
  EXPECT_NE(c.encode_rle(), empty_blob);
}

TEST(ChunkTest, RleCacheInvalidatedByFailedDecode) {
  Chunk c({0, 0});
  c.set_local(1, 1, 1, Block::Stone);
  c.encode_rle();  // warm the cache
  std::vector<std::uint8_t> short_total = {1, 0, 5, 0};  // covers 5 of the volume
  EXPECT_FALSE(c.decode_rle(short_total.data(), short_total.size()));
  // Contents are unspecified after a failed decode, but the cache must track
  // them: whatever encode_rle returns now round-trips the current blocks.
  const std::vector<std::uint8_t>& after = c.encode_rle();
  Chunk copy({0, 0});
  ASSERT_TRUE(copy.decode_rle(after.data(), after.size()));
  for (int x = 0; x < kChunkSize; ++x) {
    for (int z = 0; z < kChunkSize; ++z) {
      for (int y = 0; y < kWorldHeight; ++y) {
        ASSERT_EQ(copy.get_local(x, y, z), c.get_local(x, y, z));
      }
    }
  }
}

// ----------------------------------------------------------------- terrain

TEST(TerrainTest, DeterministicForSeed) {
  const TerrainGenerator a(99), b(99);
  for (int i = -50; i < 50; i += 7) {
    EXPECT_EQ(a.height_at(i, -i * 3), b.height_at(i, -i * 3));
  }
}

TEST(TerrainTest, DifferentSeedsDiffer) {
  const TerrainGenerator a(1), b(2);
  int diff = 0;
  for (int i = 0; i < 64; ++i) diff += a.height_at(i * 13, i * 7) != b.height_at(i * 13, i * 7);
  EXPECT_GT(diff, 10);
}

TEST(TerrainTest, HeightsWithinBounds) {
  const TerrainGenerator g(5);
  for (int x = -100; x <= 100; x += 13) {
    for (int z = -100; z <= 100; z += 17) {
      const int h = g.height_at(x, z);
      EXPECT_GE(h, 1);
      EXPECT_LT(h, kWorldHeight - 9);
    }
  }
}

TEST(TerrainTest, GeneratedChunkStructure) {
  const TerrainGenerator g(5);
  Chunk c({3, 4});
  g.generate(c);
  for (int x = 0; x < kChunkSize; ++x) {
    for (int z = 0; z < kChunkSize; ++z) {
      EXPECT_EQ(c.get_local(x, 0, z), Block::Bedrock);
      const int h = c.height_at(x, z);
      EXPECT_GE(h, TerrainGenerator::kSeaLevel - 25);
      // Below-ground is never air down to bedrock.
      const int ground = g.height_at(3 * kChunkSize + x, 4 * kChunkSize + z);
      for (int y = 1; y < ground; ++y) {
        EXPECT_NE(c.get_local(x, y, z), Block::Air) << x << "," << y << "," << z;
      }
    }
  }
}

TEST(TerrainTest, WaterFillsToSeaLevel) {
  const TerrainGenerator g(123);
  // Find a below-sea column and verify water above ground up to sea level.
  for (int x = 0; x < 512; x += 4) {
    const int h = g.height_at(x, x);
    if (h < TerrainGenerator::kSeaLevel) {
      const ChunkPos cp = ChunkPos::of_block({x, 0, x});
      Chunk c(cp);
      g.generate(c);
      const int lx = floor_mod(x, kChunkSize), lz = floor_mod(x, kChunkSize);
      EXPECT_EQ(c.get_local(lx, TerrainGenerator::kSeaLevel, lz), Block::Water);
      return;
    }
  }
  GTEST_SKIP() << "no ocean found along the diagonal for this seed";
}

// ------------------------------------------------------------------- world

TEST(WorldTest, GeneratesOnDemand) {
  World w(std::make_unique<TerrainGenerator>(7));
  EXPECT_EQ(w.loaded_chunk_count(), 0u);
  w.block_at({100, 10, 100});
  EXPECT_EQ(w.loaded_chunk_count(), 1u);
  EXPECT_TRUE(w.is_loaded(ChunkPos::of_block({100, 10, 100})));
}

TEST(WorldTest, FlatWorldWithoutGenerator) {
  World w;
  EXPECT_EQ(w.block_at({3, 0, 3}), Block::Bedrock);
  EXPECT_EQ(w.block_at({3, 1, 3}), Block::Air);
  EXPECT_EQ(w.surface_height(3, 3), 0);
}

TEST(WorldTest, SetBlockAndObserver) {
  World w;
  std::vector<BlockChange> seen;
  w.add_block_observer([&](const BlockChange& c) { seen.push_back(c); });

  EXPECT_TRUE(w.set_block({1, 5, 1}, Block::Stone));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].pos, (BlockPos{1, 5, 1}));
  EXPECT_EQ(seen[0].old_block, Block::Air);
  EXPECT_EQ(seen[0].new_block, Block::Stone);

  // No-op set does not notify.
  EXPECT_TRUE(w.set_block({1, 5, 1}, Block::Stone));
  EXPECT_EQ(seen.size(), 1u);
}

TEST(WorldTest, SetBlockRejectsOutOfRangeY) {
  World w;
  EXPECT_FALSE(w.set_block({0, -1, 0}, Block::Stone));
  EXPECT_FALSE(w.set_block({0, kWorldHeight, 0}, Block::Stone));
  EXPECT_EQ(w.block_at({0, -1, 0}), Block::Air);
  EXPECT_EQ(w.block_at({0, kWorldHeight + 5, 0}), Block::Air);
}

TEST(WorldTest, BlockIfLoadedDoesNotGenerate) {
  World w(std::make_unique<TerrainGenerator>(7));
  EXPECT_FALSE(w.block_if_loaded({50, 10, 50}).has_value());
  EXPECT_EQ(w.loaded_chunk_count(), 0u);
  w.block_at({50, 10, 50});
  EXPECT_TRUE(w.block_if_loaded({50, 10, 50}).has_value());
}

TEST(WorldTest, UnloadChunk) {
  World w;
  w.set_block({0, 3, 0}, Block::Stone);
  EXPECT_TRUE(w.unload_chunk({0, 0}));
  EXPECT_FALSE(w.unload_chunk({0, 0}));
  EXPECT_EQ(w.block_at({0, 3, 0}), Block::Air);  // regenerated flat
}

TEST(WorldTest, SpawnPositionIsAboveGround) {
  World w(std::make_unique<TerrainGenerator>(7));
  const Vec3 s = w.spawn_position(10, 10);
  const int ground = w.surface_height(10, 10);
  EXPECT_DOUBLE_EQ(s.y, ground + 1);
  EXPECT_FALSE(is_solid(w.block_at(BlockPos::from(s))));
}

TEST(AsciiMapTest, RendersBlocksOverlaysAndVoid) {
  World w;  // flat bedrock floor
  w.set_block({0, 1, 0}, Block::Planks);
  w.set_block({2, 1, 0}, Block::Water);
  // Window fully inside chunk (0,0): x,z in [0,4].
  const std::string map =
      render_ascii_map(w, {2.5, 2, 2.5}, 2, {{{4.5, 2, 4.5}, '@'}});
  // 5 rows of 5 + newlines.
  ASSERT_EQ(map.size(), 5u * 6u);
  const auto at = [&](int row, int col) { return map[row * 6 + col]; };
  EXPECT_EQ(at(0, 0), '#');  // planks at (0, z=0) -> top-left
  EXPECT_EQ(at(0, 2), '~');  // water at (2, 0)
  EXPECT_EQ(at(4, 4), '@');  // overlay at (4, 4)
  EXPECT_EQ(at(2, 2), '_');  // bare bedrock at center
}

TEST(AsciiMapTest, UnloadedChunksRenderBlank) {
  World w(std::make_unique<TerrainGenerator>(7));
  w.chunk_at({0, 0});  // only one chunk loaded
  const std::string map = render_ascii_map(w, {8.5, 30, 8.5}, 20);
  EXPECT_NE(map.find(' '), std::string::npos);   // void present
  EXPECT_NE(map.find_first_not_of(" \n"), std::string::npos);  // terrain present
}

TEST(WorldTest, NegativeCoordinatesConsistent) {
  World w(std::make_unique<TerrainGenerator>(7));
  w.set_block({-5, 30, -5}, Block::Planks);
  EXPECT_EQ(w.block_at({-5, 30, -5}), Block::Planks);
  const Chunk* c = w.find_chunk({-1, -1});
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->get_local(11, 30, 11), Block::Planks);
}

}  // namespace
}  // namespace dyconits::world
